//! Procedural drawings of digital-design visuals: truth tables, Karnaugh
//! maps, gate schematics, state tables and waveforms.
//!
//! Every renderer returns an [`Annotated`] image: pixels plus [`Mark`]s
//! locating the features a viewer must read to answer a question about the
//! drawing. The simulated visual encoders perceive a fact only if the
//! pixels under its mark stay legible at the encoder's input resolution,
//! which ties the paper's resolution study to real raster content.
//!
//! [`Mark`]: chipvqa_raster::Mark

use chipvqa_raster::{Annotated, Pixmap, Region, BLACK};

use crate::expr::TruthTable;
use crate::netlist::{GateKind, Netlist};
use crate::seq::StateTable;

const CELL_W: i64 = 42;
const CELL_H: i64 = 26;
const TEXT: i64 = 2;
const STROKE: i64 = 2;

/// Renders a truth table as a ruled grid.
///
/// # Panics
///
/// Panics for tables over more than 6 variables (they stop being readable
/// figures, and the paper's visuals never exceed 4).
pub fn render_truth_table(tt: &TruthTable, output_name: &str) -> Annotated {
    assert!(tt.num_vars() <= 6, "truth table too wide to render");
    let cols = tt.num_vars() as i64 + 1;
    let rows = tt.outputs.len() as i64 + 1;
    let w = (cols * CELL_W + 40) as usize;
    let h = (rows * CELL_H + 40) as usize;
    let mut img = Pixmap::new(w, h);
    let mut ann_marks: Vec<(String, Region)> = Vec::new();
    let ox = 20i64;
    let oy = 20i64;

    for r in 0..=rows {
        img.draw_line(
            ox,
            oy + r * CELL_H,
            ox + cols * CELL_W,
            oy + r * CELL_H,
            STROKE,
            BLACK,
        );
    }
    for c in 0..=cols {
        img.draw_line(
            ox + c * CELL_W,
            oy,
            ox + c * CELL_W,
            oy + rows * CELL_H,
            STROKE,
            BLACK,
        );
    }
    // header
    for (i, v) in tt.vars.iter().enumerate() {
        let x = ox + i as i64 * CELL_W + 14;
        img.draw_text(x, oy + 6, &v.to_string(), TEXT, BLACK);
    }
    let fx = ox + tt.num_vars() as i64 * CELL_W + 8;
    img.draw_text(fx, oy + 6, output_name, TEXT, BLACK);
    ann_marks.push((
        format!("output column header {output_name}"),
        Region::new(fx as usize, oy as usize, CELL_W as usize, CELL_H as usize),
    ));
    // rows
    for (row, &out) in tt.outputs.iter().enumerate() {
        let y = oy + (row as i64 + 1) * CELL_H + 6;
        for v in 0..tt.num_vars() {
            let bit = tt.input_bit(row, v);
            img.draw_text(
                ox + v as i64 * CELL_W + 16,
                y,
                if bit { "1" } else { "0" },
                TEXT,
                BLACK,
            );
        }
        let cell_x = ox + tt.num_vars() as i64 * CELL_W + 16;
        img.draw_text(cell_x, y, if out { "1" } else { "0" }, TEXT, BLACK);
        ann_marks.push((
            format!("row {row}: {output_name}={}", u8::from(out)),
            Region::new(
                (cell_x - 8) as usize,
                (y - 6) as usize,
                CELL_W as usize,
                CELL_H as usize,
            ),
        ));
    }
    let mut annotated = Annotated::new(img);
    for (label, region) in ann_marks {
        annotated.mark(label, region);
    }
    annotated
}

/// Gray-code column/row ordering used by K-maps.
fn gray_order(bits: usize) -> Vec<usize> {
    (0..(1usize << bits)).map(|i| i ^ (i >> 1)).collect()
}

/// Renders a Karnaugh map for a 2-, 3- or 4-variable function.
///
/// # Panics
///
/// Panics for functions of fewer than 2 or more than 4 variables.
pub fn render_kmap(tt: &TruthTable) -> Annotated {
    let n = tt.num_vars();
    assert!((2..=4).contains(&n), "K-maps render for 2..=4 variables");
    let row_bits = n / 2; // 1 for 2-3 vars, 2 for 4 vars
    let col_bits = n - row_bits;
    let rows = gray_order(row_bits);
    let cols = gray_order(col_bits);
    let ox = 80i64;
    let oy = 60i64;
    let w = (ox + cols.len() as i64 * CELL_W + 30) as usize;
    let h = (oy + rows.len() as i64 * CELL_H + 30) as usize;
    let mut img = Pixmap::new(w, h);
    let mut marks: Vec<(String, Region)> = Vec::new();

    let row_vars: String = tt.vars[..row_bits].iter().collect();
    let col_vars: String = tt.vars[row_bits..].iter().collect();
    img.draw_text(10, 10, &format!("{row_vars} \\ {col_vars}"), TEXT, BLACK);

    for (ci, &c) in cols.iter().enumerate() {
        img.draw_text(
            ox + ci as i64 * CELL_W + 10,
            oy - 20,
            &format!("{:0width$b}", c, width = col_bits),
            TEXT,
            BLACK,
        );
    }
    for (ri, &r) in rows.iter().enumerate() {
        img.draw_text(
            ox - 40,
            oy + ri as i64 * CELL_H + 6,
            &format!("{:0width$b}", r, width = row_bits),
            TEXT,
            BLACK,
        );
    }
    for r in 0..=rows.len() as i64 {
        img.draw_line(
            ox,
            oy + r * CELL_H,
            ox + cols.len() as i64 * CELL_W,
            oy + r * CELL_H,
            STROKE,
            BLACK,
        );
    }
    for c in 0..=cols.len() as i64 {
        img.draw_line(
            ox + c * CELL_W,
            oy,
            ox + c * CELL_W,
            oy + rows.len() as i64 * CELL_H,
            STROKE,
            BLACK,
        );
    }
    for (ri, &r) in rows.iter().enumerate() {
        for (ci, &c) in cols.iter().enumerate() {
            let minterm = (r << col_bits) | c;
            let value = tt.output(minterm).expect("minterm within table");
            let x = ox + ci as i64 * CELL_W + 16;
            let y = oy + ri as i64 * CELL_H + 6;
            img.draw_text(x, y, if value { "1" } else { "0" }, TEXT, BLACK);
            marks.push((
                format!("m{minterm}={}", u8::from(value)),
                Region::new(
                    (x - 6) as usize,
                    (y - 4) as usize,
                    CELL_W as usize,
                    CELL_H as usize,
                ),
            ));
        }
    }
    let mut annotated = Annotated::new(img);
    for (label, region) in marks {
        annotated.mark(label, region);
    }
    annotated
}

/// Renders a gate-level schematic as a layered left-to-right diagram:
/// inputs in the left column, gates placed by logic depth, wires drawn as
/// elbow polylines, outputs labelled on the right.
pub fn render_schematic(nl: &Netlist) -> Annotated {
    // Column = logic depth, row = order of appearance within that column.
    let gates = nl.gates();
    let mut depth = vec![0usize; gates.len()];
    for (i, g) in gates.iter().enumerate() {
        let d = g.inputs.iter().map(|id| depth[id.0]).max().unwrap_or(0);
        depth[i] = if g.kind == GateKind::Input { 0 } else { d + 1 };
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);
    let mut row_in_col = vec![0usize; gates.len()];
    let mut col_counts = vec![0usize; max_depth + 1];
    for (i, &d) in depth.iter().enumerate() {
        row_in_col[i] = col_counts[d];
        col_counts[d] += 1;
    }
    let max_rows = col_counts.iter().copied().max().unwrap_or(1);

    const GW: i64 = 72; // gate box width
    const GH: i64 = 34;
    const HSP: i64 = 130;
    const VSP: i64 = 58;
    let w = (60 + (max_depth as i64 + 1) * HSP + 80) as usize;
    let h = (40 + max_rows as i64 * VSP + 40) as usize;
    let mut img = Pixmap::new(w.max(200), h.max(120));
    let mut marks: Vec<(String, Region)> = Vec::new();

    let pos = |i: usize| -> (i64, i64) {
        let x = 30 + depth[i] as i64 * HSP;
        let y = 30 + row_in_col[i] as i64 * VSP;
        (x, y)
    };

    // wires first (under the boxes)
    for (i, g) in gates.iter().enumerate() {
        let (x, y) = pos(i);
        for id in &g.inputs {
            let (sx, sy) = pos(id.0);
            let mid = x - 18;
            img.draw_polyline(
                &[
                    (sx + GW, sy + GH / 2),
                    (mid, sy + GH / 2),
                    (mid, y + GH / 2),
                    (x, y + GH / 2),
                ],
                STROKE,
                BLACK,
            );
        }
    }
    for (i, g) in gates.iter().enumerate() {
        let (x, y) = pos(i);
        img.draw_rect(x, y, GW, GH, STROKE, BLACK);
        let label = match (&g.name, g.kind) {
            (Some(name), GateKind::Input) => name.clone(),
            _ => g.kind.label().to_string(),
        };
        img.draw_text(x + 6, y + 10, &label, TEXT, BLACK);
        marks.push((
            format!("node {i}: {label}"),
            Region::new(x as usize, y as usize, GW as usize, GH as usize),
        ));
        // bubble for inverting gates
        if matches!(
            g.kind,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        ) {
            img.draw_circle(x + GW + 5, y + GH / 2, 4, STROKE, BLACK);
        }
    }
    for (out, name) in nl.outputs() {
        let (x, y) = pos(out.0);
        img.draw_arrow(
            x + GW + 10,
            y + GH / 2,
            x + GW + 40,
            y + GH / 2,
            STROKE,
            BLACK,
        );
        img.draw_text(x + GW + 44, y + GH / 2 - 6, name, TEXT, BLACK);
        marks.push((
            format!("output {name}"),
            Region::new((x + GW + 10) as usize, y as usize, 70, GH as usize),
        ));
    }
    let mut annotated = Annotated::new(img);
    for (label, region) in marks {
        annotated.mark(label, region);
    }
    annotated
}

/// Renders a binary-encoded state table (present state, input, next
/// state).
pub fn render_state_table(st: &StateTable) -> Annotated {
    let in_bits = st.input_names().len();
    let cols = 3i64;
    let rows = st.rows().len() as i64 + 1;
    let cw = CELL_W + 30;
    let w = (40 + cols * cw) as usize;
    let h = (40 + rows * CELL_H) as usize;
    let mut img = Pixmap::new(w, h);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let (ox, oy) = (20i64, 20i64);

    for r in 0..=rows {
        img.draw_line(
            ox,
            oy + r * CELL_H,
            ox + cols * cw,
            oy + r * CELL_H,
            STROKE,
            BLACK,
        );
    }
    for c in 0..=cols {
        img.draw_line(
            ox + c * cw,
            oy,
            ox + c * cw,
            oy + rows * CELL_H,
            STROKE,
            BLACK,
        );
    }
    let state_names: String = st.state_var_names().iter().collect();
    let input_names: String = st.input_names().iter().collect();
    img.draw_text(ox + 6, oy + 6, &state_names, TEXT, BLACK);
    img.draw_text(ox + cw + 6, oy + 6, &input_names, TEXT, BLACK);
    img.draw_text(
        ox + 2 * cw + 6,
        oy + 6,
        &format!("{state_names}+"),
        TEXT,
        BLACK,
    );

    for (row, &next) in st.rows().iter().enumerate() {
        let present = row >> in_bits;
        let input = row & ((1 << in_bits) - 1);
        let y = oy + (row as i64 + 1) * CELL_H + 6;
        img.draw_text(
            ox + 6,
            y,
            &format!("{:0width$b}", present, width = st.state_bits()),
            TEXT,
            BLACK,
        );
        img.draw_text(
            ox + cw + 6,
            y,
            &format!("{:0width$b}", input, width = in_bits.max(1)),
            TEXT,
            BLACK,
        );
        let nx = ox + 2 * cw + 6;
        img.draw_text(
            nx,
            y,
            &format!("{:0width$b}", next, width = st.state_bits()),
            TEXT,
            BLACK,
        );
        marks.push((
            format!("row s={present} in={input} next={next}"),
            Region::new(nx as usize, (y - 6) as usize, cw as usize, CELL_H as usize),
        ));
    }
    let mut annotated = Annotated::new(img);
    for (label, region) in marks {
        annotated.mark(label, region);
    }
    annotated
}

/// Renders stacked square-wave traces (clock/data style waveforms).
pub fn render_waveform(signals: &[(&str, &[bool])]) -> Annotated {
    let max_len = signals.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    const STEP: i64 = 28;
    const AMP: i64 = 18;
    const LANE: i64 = 46;
    let w = (90 + max_len as i64 * STEP + 20) as usize;
    let h = (20 + signals.len() as i64 * LANE + 20) as usize;
    let mut img = Pixmap::new(w.max(140), h.max(60));
    let mut marks: Vec<(String, Region)> = Vec::new();

    for (lane, (name, samples)) in signals.iter().enumerate() {
        let base = 20 + lane as i64 * LANE + AMP;
        img.draw_text(6, base - AMP / 2 - 4, name, TEXT, BLACK);
        let mut pts: Vec<(i64, i64)> = Vec::new();
        for (i, &v) in samples.iter().enumerate() {
            let x0 = 80 + i as i64 * STEP;
            let y = if v { base - AMP } else { base };
            if let Some(&(_, py)) = pts.last() {
                if py != y {
                    pts.push((x0, py));
                    pts.push((x0, y));
                }
            }
            if pts.is_empty() {
                pts.push((x0, y));
            }
            pts.push((x0 + STEP, y));
        }
        img.draw_polyline(&pts, STROKE, BLACK);
        marks.push((
            format!("waveform {name}"),
            Region::new(
                80,
                (base - AMP) as usize,
                (max_len as i64 * STEP) as usize,
                (AMP + 4) as usize,
            ),
        ));
    }
    let mut annotated = Annotated::new(img);
    for (label, region) in marks {
        annotated.mark(label, region);
    }
    annotated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::expr::Expr;
    use crate::seq::FlipFlop;
    use chipvqa_raster::legibility_after_downsample;

    #[test]
    fn truth_table_renders_with_marks() {
        let tt = Expr::parse("A ^ B").unwrap().truth_table().unwrap();
        let vis = render_truth_table(&tt, "F");
        assert!(vis.image.ink_pixels() > 100);
        // header + 4 rows
        assert_eq!(vis.marks.len(), 5);
    }

    #[test]
    fn kmap_cells_marked_with_minterms() {
        let tt = Expr::parse("AB + CD").unwrap().truth_table().unwrap();
        let vis = render_kmap(&tt);
        assert_eq!(vis.marks.len(), 16);
        assert!(vis.marks.iter().any(|m| m.label == "m15=1"));
        assert!(vis.marks.iter().any(|m| m.label == "m0=0"));
    }

    #[test]
    #[should_panic(expected = "2..=4")]
    fn kmap_rejects_one_variable() {
        let tt = Expr::parse("A").unwrap().truth_table().unwrap();
        let _ = render_kmap(&tt);
    }

    #[test]
    fn schematic_marks_every_gate_and_output() {
        let nl = builders::full_adder();
        let vis = render_schematic(&nl);
        // 3 inputs + 5 gates + 2 outputs
        assert_eq!(vis.marks.len(), 10);
        assert!(vis.image.ink_pixels() > 300);
    }

    #[test]
    fn schematic_legibility_degrades_at_16x() {
        let nl = builders::ripple_carry_adder(4);
        let vis = render_schematic(&nl);
        let all = chipvqa_raster::Region::full(&vis.image);
        let at8 = legibility_after_downsample(&vis.image, all, 8);
        let at16 = legibility_after_downsample(&vis.image, all, 16);
        assert!(at8 > at16, "{at8} vs {at16}");
    }

    #[test]
    fn state_table_renders() {
        let (st, _) = StateTable::of_flip_flop(FlipFlop::Jk);
        let vis = render_state_table(&st);
        assert_eq!(vis.marks.len(), st.rows().len());
    }

    #[test]
    fn waveform_tracks_each_signal() {
        let clk = [true, false, true, false, true, false];
        let d = [false, false, true, true, false, false];
        let vis = render_waveform(&[("CLK", &clk), ("D", &d)]);
        assert_eq!(vis.marks.len(), 2);
        assert!(vis.image.ink_pixels() > 100);
    }
}

//! Quine–McCluskey two-level minimisation.
//!
//! Produces a minimal (or near-minimal: essential prime implicants plus a
//! greedy cover of the remainder) sum-of-products for a function given as
//! minterms and optional don't-cares. This is the engine behind the
//! "derive the function from the K-map / state table" family of ChipVQA
//! questions: the golden answers are *derived*, not hand-written.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::expr::{Expr, TruthTable};

/// A product term over `n` variables: for each variable position the
/// implicant either requires a value (`mask` bit set) or doesn't care.
///
/// Bit positions follow the truth-table convention: bit `n-1-i` of
/// `value`/`mask` corresponds to variable `i` (MSB first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Implicant {
    /// Required values on the cared-about positions.
    pub value: u32,
    /// Which bit positions are cared about (1 = cared).
    pub mask: u32,
}

impl Implicant {
    /// The implicant covering exactly one minterm.
    pub fn from_minterm(m: usize, num_vars: usize) -> Self {
        Implicant {
            value: m as u32,
            mask: ((1u64 << num_vars) - 1) as u32,
        }
    }

    /// Whether this implicant covers minterm `m`.
    pub fn covers(&self, m: usize) -> bool {
        (m as u32 & self.mask) == (self.value & self.mask)
    }

    /// Tries to merge with another implicant differing in exactly one
    /// cared bit.
    pub fn merge(&self, other: &Implicant) -> Option<Implicant> {
        if self.mask != other.mask {
            return None;
        }
        let diff = (self.value ^ other.value) & self.mask;
        if diff.count_ones() == 1 {
            Some(Implicant {
                value: self.value & !diff,
                mask: self.mask & !diff,
            })
        } else {
            None
        }
    }

    /// Number of literals this implicant contributes to an SOP cover.
    pub fn literal_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Converts to a product-term expression over `vars` (MSB first).
    /// A fully don't-care implicant converts to the constant `1`.
    pub fn to_expr(&self, vars: &[char]) -> Expr {
        let n = vars.len();
        let mut factors = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            let bit = 1u32 << (n - 1 - i);
            if self.mask & bit != 0 {
                if self.value & bit != 0 {
                    factors.push(Expr::Var(v));
                } else {
                    factors.push(Expr::Not(Box::new(Expr::Var(v))));
                }
            }
        }
        match factors.len() {
            0 => Expr::Const(true),
            1 => factors.into_iter().next().expect("one factor"),
            _ => Expr::And(factors),
        }
    }
}

impl fmt::Display for Implicant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Implicant(value={:b}, mask={:b})", self.value, self.mask)
    }
}

/// Minimises the function defined by `minterms` (and optional `dont_cares`)
/// over `num_vars` variables, returning the selected prime implicants.
///
/// The cover consists of all essential prime implicants plus a greedy
/// (most-coverage-first, fewest-literals tie-break) completion — the
/// standard textbook procedure.
///
/// # Panics
///
/// Panics if `num_vars > 20` or any minterm is out of range.
pub fn minimize(num_vars: usize, minterms: &[usize], dont_cares: &[usize]) -> Vec<Implicant> {
    assert!(num_vars <= 20, "too many variables for QM");
    let limit = 1usize << num_vars;
    for &m in minterms.iter().chain(dont_cares) {
        assert!(m < limit, "minterm {m} out of range for {num_vars} vars");
    }
    if minterms.is_empty() {
        return Vec::new();
    }

    // 1. Find all prime implicants over minterms + don't-cares.
    let mut current: BTreeSet<Implicant> = minterms
        .iter()
        .chain(dont_cares)
        .map(|&m| Implicant::from_minterm(m, num_vars))
        .collect();
    let mut primes: BTreeSet<Implicant> = BTreeSet::new();
    while !current.is_empty() {
        let items: Vec<Implicant> = current.iter().copied().collect();
        let mut merged_flags = vec![false; items.len()];
        let mut next: BTreeSet<Implicant> = BTreeSet::new();
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                if let Some(m) = items[i].merge(&items[j]) {
                    merged_flags[i] = true;
                    merged_flags[j] = true;
                    next.insert(m);
                }
            }
        }
        for (i, item) in items.iter().enumerate() {
            if !merged_flags[i] {
                primes.insert(*item);
            }
        }
        current = next;
    }

    // 2. Select essential primes, then greedily cover the rest.
    let primes: Vec<Implicant> = primes.into_iter().collect();
    let mut uncovered: BTreeSet<usize> = minterms.iter().copied().collect();
    let mut chosen: Vec<Implicant> = Vec::new();

    for &m in minterms {
        let covering: Vec<&Implicant> = primes.iter().filter(|p| p.covers(m)).collect();
        if covering.len() == 1 {
            let essential = *covering[0];
            if !chosen.contains(&essential) {
                uncovered.retain(|&u| !essential.covers(u));
                chosen.push(essential);
            }
        }
    }

    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .filter(|p| !chosen.contains(p))
            .max_by_key(|p| {
                let cover = uncovered.iter().filter(|&&m| p.covers(m)).count();
                (cover, std::cmp::Reverse(p.literal_count()))
            })
            .copied()
            .expect("primes must cover all minterms");
        uncovered.retain(|&u| !best.covers(u));
        chosen.push(best);
    }

    chosen.sort();
    chosen
}

/// Minimises a [`TruthTable`] into a sum-of-products [`Expr`].
///
/// # Example
///
/// ```
/// use chipvqa_logic::expr::Expr;
/// use chipvqa_logic::minimize::minimize_table;
///
/// let f = Expr::parse("A'B + AB + AB'")?; // = A + B
/// let min = minimize_table(&f.truth_table().unwrap());
/// assert!(min.equivalent(&Expr::parse("A + B")?).unwrap());
/// assert!(min.literal_count() <= 2);
/// # Ok::<(), chipvqa_logic::expr::ParseExprError>(())
/// ```
pub fn minimize_table(table: &TruthTable) -> Expr {
    let minterms = table.minterms();
    if minterms.is_empty() {
        return Expr::Const(false);
    }
    if minterms.len() == table.outputs.len() {
        return Expr::Const(true);
    }
    let implicants = minimize(table.num_vars(), &minterms, &[]);
    implicants_to_expr(&implicants, &table.vars)
}

/// Converts a selected implicant cover into an SOP expression.
pub fn implicants_to_expr(implicants: &[Implicant], vars: &[char]) -> Expr {
    match implicants.len() {
        0 => Expr::Const(false),
        1 => implicants[0].to_expr(vars),
        _ => Expr::Or(implicants.iter().map(|imp| imp.to_expr(vars)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn p(s: &str) -> Expr {
        Expr::parse(s).expect(s)
    }

    #[test]
    fn merge_requires_single_bit_difference() {
        let a = Implicant::from_minterm(0b000, 3);
        let b = Implicant::from_minterm(0b001, 3);
        let c = Implicant::from_minterm(0b011, 3);
        let ab = a.merge(&b).expect("adjacent");
        assert_eq!(ab.mask, 0b110);
        assert!(a.merge(&c).is_none());
    }

    #[test]
    fn classic_textbook_example() {
        // f(A,B,C,D) = sum m(0,1,2,5,6,7,8,9,10,14) -> known 4-term minimum
        let cover = minimize(4, &[0, 1, 2, 5, 6, 7, 8, 9, 10, 14], &[]);
        let expr = implicants_to_expr(&cover, &['A', 'B', 'C', 'D']);
        let canonical = TruthTableHelper::sop(4, &[0, 1, 2, 5, 6, 7, 8, 9, 10, 14]);
        assert!(expr.equivalent(&canonical).unwrap());
        let lits = expr.literal_count();
        assert!(lits <= 11, "cover should be small, got {lits} literals");
    }

    #[test]
    fn dont_cares_shrink_cover() {
        // f = m(1,3) with dc(5,7): minimises to just "C" over A,B,C
        // minterms where C=1: 1,3,5,7.
        let with_dc = minimize(3, &[1, 3], &[5, 7]);
        let expr = implicants_to_expr(&with_dc, &['A', 'B', 'C']);
        assert!(expr.equivalent(&p("C")).unwrap() || expr.equivalent(&p("A'C")).unwrap());
        let without = minimize(3, &[1, 3], &[]);
        let e2 = implicants_to_expr(&without, &['A', 'B', 'C']);
        assert!(e2.equivalent(&p("A'C")).unwrap());
    }

    #[test]
    fn empty_and_full_functions() {
        assert!(minimize(3, &[], &[]).is_empty());
        let all: Vec<usize> = (0..8).collect();
        let cover = minimize(3, &all, &[]);
        let expr = implicants_to_expr(&cover, &['A', 'B', 'C']);
        assert!(expr.equivalent(&Expr::Const(true)).unwrap());
    }

    #[test]
    fn minimize_table_equivalence() {
        let f = p("A'B'C + A'BC + AB'C + ABC + ABC'");
        let min = minimize_table(&f.truth_table().unwrap());
        assert!(min.equivalent(&f).unwrap());
        assert!(min.literal_count() < f.literal_count());
    }

    #[test]
    fn xor_is_irreducible() {
        let f = p("A ^ B");
        let min = minimize_table(&f.truth_table().unwrap());
        assert!(min.equivalent(&f).unwrap());
        // XOR needs 4 literals in SOP
        assert_eq!(min.literal_count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_minterm_panics() {
        let _ = minimize(2, &[4], &[]);
    }

    struct TruthTableHelper;
    impl TruthTableHelper {
        fn sop(num_vars: usize, minterms: &[usize]) -> Expr {
            let vars: Vec<char> = ('A'..).take(num_vars).collect();
            let mut outputs = vec![false; 1 << num_vars];
            for &m in minterms {
                outputs[m] = true;
            }
            crate::expr::TruthTable::new(vars, outputs).to_canonical_sop()
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn minimized_cover_is_equivalent(
                minterm_bits in 0u32..(1 << 16),
            ) {
                let minterms: Vec<usize> =
                    (0..16).filter(|&i| minterm_bits >> i & 1 == 1).collect();
                let vars = ['A', 'B', 'C', 'D'];
                let cover = minimize(4, &minterms, &[]);
                let expr = implicants_to_expr(&cover, &vars);
                // Every minterm covered, every non-minterm excluded.
                for row in 0..16usize {
                    let assignment: Vec<(char, bool)> = vars
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| (v, row >> (3 - i) & 1 == 1))
                        .collect();
                    let expected = minterms.contains(&row);
                    prop_assert_eq!(expr.eval(&assignment), expected, "row {}", row);
                }
            }

            #[test]
            fn cover_never_larger_than_minterm_count(
                minterm_bits in 1u32..(1 << 16),
            ) {
                let minterms: Vec<usize> =
                    (0..16).filter(|&i| minterm_bits >> i & 1 == 1).collect();
                let cover = minimize(4, &minterms, &[]);
                prop_assert!(cover.len() <= minterms.len());
            }
        }
    }
}

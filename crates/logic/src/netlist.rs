//! Gate-level netlists: construction, combinational simulation and
//! critical-path analysis.
//!
//! Netlists are append-only DAGs of [`Gate`]s referencing earlier nodes by
//! [`NodeId`], which makes cycles unrepresentable by construction and
//! keeps evaluation a single forward pass.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::expr::Expr;

/// Index of a node inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// The logic function a gate computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Primary input (no fan-in).
    Input,
    /// Buffer (identity).
    Buf,
    /// Inverter.
    Not,
    /// N-input AND.
    And,
    /// N-input OR.
    Or,
    /// N-input NAND.
    Nand,
    /// N-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
}

impl GateKind {
    /// Typical relative propagation delay of the gate, in arbitrary
    /// "inverter delay" units (used for critical-path questions).
    pub fn unit_delay(self) -> f64 {
        match self {
            GateKind::Input => 0.0,
            GateKind::Buf => 1.0,
            GateKind::Not => 1.0,
            GateKind::Nand | GateKind::Nor => 1.0,
            GateKind::And | GateKind::Or => 2.0, // NAND/NOR + inverter
            GateKind::Xor | GateKind::Xnor => 3.0,
        }
    }

    /// Short label used in schematic drawings.
    pub fn label(self) -> &'static str {
        match self {
            GateKind::Input => "IN",
            GateKind::Buf => "BUF",
            GateKind::Not => "NOT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One gate instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Gate {
    /// Function computed.
    pub kind: GateKind,
    /// Fan-in node ids (must precede this gate in the netlist).
    pub inputs: Vec<NodeId>,
    /// Optional instance name (pin names for inputs, net names otherwise).
    pub name: Option<String>,
}

/// Error constructing or evaluating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate referenced a node id that does not exist yet.
    ForwardReference {
        /// The offending reference.
        reference: usize,
        /// Number of nodes present when the gate was added.
        len: usize,
    },
    /// A gate was given the wrong number of inputs for its kind.
    BadArity {
        /// Gate kind.
        kind: GateKind,
        /// Inputs supplied.
        got: usize,
    },
    /// Evaluation was given the wrong number of primary-input values.
    BadInputCount {
        /// Values supplied.
        got: usize,
        /// Primary inputs in the netlist.
        expected: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ForwardReference { reference, len } => write!(
                f,
                "gate references node {reference} but only {len} nodes exist"
            ),
            NetlistError::BadArity { kind, got } => {
                write!(f, "{kind} gate given {got} inputs")
            }
            NetlistError::BadInputCount { got, expected } => {
                write!(f, "evaluation given {got} inputs, netlist has {expected}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// A combinational gate-level netlist.
///
/// # Example
///
/// ```
/// use chipvqa_logic::netlist::{GateKind, Netlist};
///
/// let mut nl = Netlist::new();
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let sum = nl.add_gate(GateKind::Xor, &[a, b])?;
/// let carry = nl.add_gate(GateKind::And, &[a, b])?;
/// nl.mark_output(sum, "sum");
/// nl.mark_output(carry, "carry");
/// assert_eq!(nl.eval(&[true, true])?, vec![false, true]);
/// # Ok::<(), chipvqa_logic::netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<NodeId>,
    outputs: Vec<(NodeId, String)>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds a named primary input and returns its node id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.gates.len());
        self.gates.push(Gate {
            kind: GateKind::Input,
            inputs: Vec::new(),
            name: Some(name.into()),
        });
        self.inputs.push(id);
        id
    }

    /// Adds a gate fed by existing nodes.
    ///
    /// # Errors
    ///
    /// [`NetlistError::ForwardReference`] if an input id is out of range,
    /// [`NetlistError::BadArity`] if the input count is illegal for the
    /// gate kind (NOT/BUF take exactly one, XOR/XNOR exactly two, the
    /// N-input gates at least two).
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NodeId]) -> Result<NodeId, NetlistError> {
        for &NodeId(i) in inputs {
            if i >= self.gates.len() {
                return Err(NetlistError::ForwardReference {
                    reference: i,
                    len: self.gates.len(),
                });
            }
        }
        let arity_ok = match kind {
            GateKind::Input => false,
            GateKind::Not | GateKind::Buf => inputs.len() == 1,
            GateKind::Xor | GateKind::Xnor => inputs.len() == 2,
            _ => inputs.len() >= 2,
        };
        if !arity_ok {
            return Err(NetlistError::BadArity {
                kind,
                got: inputs.len(),
            });
        }
        let id = NodeId(self.gates.len());
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            name: None,
        });
        Ok(id)
    }

    /// Marks a node as a named primary output.
    pub fn mark_output(&mut self, node: NodeId, name: impl Into<String>) {
        self.outputs.push((node, name.into()));
    }

    /// All gates, in definition order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary input ids in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs as `(node, name)` pairs.
    pub fn outputs(&self) -> &[(NodeId, String)] {
        &self.outputs
    }

    /// Number of non-input gates.
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.kind != GateKind::Input)
            .count()
    }

    /// Evaluates all nodes for one input vector (ordered like
    /// [`Netlist::inputs`]); returns the values of the marked outputs.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadInputCount`] on input-vector length mismatch.
    pub fn eval(&self, input_values: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let values = self.eval_all(input_values)?;
        Ok(self
            .outputs
            .iter()
            .map(|&(NodeId(i), _)| values[i])
            .collect())
    }

    /// Evaluates and returns every node's value.
    ///
    /// # Errors
    ///
    /// [`NetlistError::BadInputCount`] on input-vector length mismatch.
    pub fn eval_all(&self, input_values: &[bool]) -> Result<Vec<bool>, NetlistError> {
        if input_values.len() != self.inputs.len() {
            return Err(NetlistError::BadInputCount {
                got: input_values.len(),
                expected: self.inputs.len(),
            });
        }
        let mut values = vec![false; self.gates.len()];
        let mut next_input = 0usize;
        for (i, gate) in self.gates.iter().enumerate() {
            let v = |id: &NodeId| values[id.0];
            values[i] = match gate.kind {
                GateKind::Input => {
                    let val = input_values[next_input];
                    next_input += 1;
                    val
                }
                GateKind::Buf => v(&gate.inputs[0]),
                GateKind::Not => !v(&gate.inputs[0]),
                GateKind::And => gate.inputs.iter().all(v),
                GateKind::Or => gate.inputs.iter().any(v),
                GateKind::Nand => !gate.inputs.iter().all(v),
                GateKind::Nor => !gate.inputs.iter().any(v),
                GateKind::Xor => v(&gate.inputs[0]) ^ v(&gate.inputs[1]),
                GateKind::Xnor => !(v(&gate.inputs[0]) ^ v(&gate.inputs[1])),
            };
        }
        Ok(values)
    }

    /// Longest input-to-output delay using each gate's
    /// [`GateKind::unit_delay`]. Returns `0.0` for netlists with no marked
    /// outputs.
    pub fn critical_path_delay(&self) -> f64 {
        let mut arrival = vec![0.0f64; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            let input_arrival = gate
                .inputs
                .iter()
                .map(|id| arrival[id.0])
                .fold(0.0f64, f64::max);
            arrival[i] = input_arrival + gate.kind.unit_delay();
        }
        self.outputs
            .iter()
            .map(|&(NodeId(i), _)| arrival[i])
            .fold(0.0f64, f64::max)
    }

    /// Logic depth (gate count along the deepest path to any output).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            let d = gate.inputs.iter().map(|id| depth[id.0]).max().unwrap_or(0);
            depth[i] = if gate.kind == GateKind::Input {
                0
            } else {
                d + 1
            };
        }
        self.outputs
            .iter()
            .map(|&(NodeId(i), _)| depth[i])
            .max()
            .unwrap_or(0)
    }

    /// Builds a netlist computing `expr`; input order is the expression's
    /// sorted variable order and the single output is named `f`.
    pub fn from_expr(expr: &Expr) -> Netlist {
        let vars = expr.vars();
        Netlist::from_exprs(&[("f", expr.clone())], &vars)
    }

    /// Builds a multi-output netlist over an explicit shared input order:
    /// one named output per `(name, expr)` pair, all reading the same
    /// input nodes.
    ///
    /// # Panics
    ///
    /// Panics if an expression mentions a variable missing from `vars`.
    pub fn from_exprs(outputs: &[(&str, Expr)], vars: &[char]) -> Netlist {
        let mut nl = Netlist::new();
        let var_ids: Vec<(char, NodeId)> = vars
            .iter()
            .map(|&v| (v, nl.add_input(v.to_string())))
            .collect();
        for (name, expr) in outputs {
            for v in expr.vars() {
                assert!(
                    vars.contains(&v),
                    "expression variable {v} missing from input order"
                );
            }
            let out = nl.build_expr(expr, &var_ids);
            nl.mark_output(out, *name);
        }
        nl
    }

    fn build_expr(&mut self, expr: &Expr, vars: &[(char, NodeId)]) -> NodeId {
        match expr {
            Expr::Const(b) => {
                // Constants are modelled as x AND x' (0) or x OR x' (1) on
                // the first input, or a dedicated tied input when none.
                let base = if let Some(&(_, id)) = vars.first() {
                    id
                } else {
                    self.add_input("const")
                };
                let inv = self.add_gate(GateKind::Not, &[base]).expect("valid arity");
                let kind = if *b { GateKind::Or } else { GateKind::And };
                self.add_gate(kind, &[base, inv]).expect("valid arity")
            }
            Expr::Var(v) => {
                vars.iter()
                    .find(|(name, _)| name == v)
                    .expect("variable collected in vars()")
                    .1
            }
            Expr::Not(e) => {
                let inner = self.build_expr(e, vars);
                self.add_gate(GateKind::Not, &[inner]).expect("valid arity")
            }
            Expr::And(es) | Expr::Or(es) => {
                let kind = if matches!(expr, Expr::And(_)) {
                    GateKind::And
                } else {
                    GateKind::Or
                };
                let ids: Vec<NodeId> = es.iter().map(|e| self.build_expr(e, vars)).collect();
                if ids.len() == 1 {
                    ids[0]
                } else {
                    self.add_gate(kind, &ids).expect("valid arity")
                }
            }
            Expr::Xor(a, b) => {
                let ia = self.build_expr(a, vars);
                let ib = self.build_expr(b, vars);
                self.add_gate(GateKind::Xor, &[ia, ib])
                    .expect("valid arity")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn half_adder() -> Netlist {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let c = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.mark_output(s, "sum");
        nl.mark_output(c, "carry");
        nl
    }

    #[test]
    fn half_adder_truth_table() {
        let nl = half_adder();
        assert_eq!(nl.eval(&[false, false]).unwrap(), vec![false, false]);
        assert_eq!(nl.eval(&[false, true]).unwrap(), vec![true, false]);
        assert_eq!(nl.eval(&[true, false]).unwrap(), vec![true, false]);
        assert_eq!(nl.eval(&[true, true]).unwrap(), vec![false, true]);
    }

    #[test]
    fn arity_checks() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        assert!(matches!(
            nl.add_gate(GateKind::Not, &[a, a]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            nl.add_gate(GateKind::And, &[a]),
            Err(NetlistError::BadArity { .. })
        ));
        assert!(matches!(
            nl.add_gate(GateKind::Xor, &[a, a, a]),
            Err(NetlistError::BadArity { .. })
        ));
    }

    #[test]
    fn forward_reference_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_input("a");
        assert!(matches!(
            nl.add_gate(GateKind::Not, &[NodeId(5)]),
            Err(NetlistError::ForwardReference { .. })
        ));
        let _ = a;
    }

    #[test]
    fn bad_input_count() {
        let nl = half_adder();
        assert!(matches!(
            nl.eval(&[true]),
            Err(NetlistError::BadInputCount {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn critical_path_and_depth() {
        let nl = half_adder();
        assert_eq!(nl.depth(), 1);
        // XOR delay 3 > AND delay 2.
        assert!((nl.critical_path_delay() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn from_expr_matches_expression() {
        for src in ["S'Q + SR'", "A ^ B ^ C", "(A + B)(C + D)'", "AB + CD"] {
            let e = Expr::parse(src).unwrap();
            let nl = Netlist::from_expr(&e);
            let vars = e.vars();
            for row in 0..(1usize << vars.len()) {
                let assignment: Vec<bool> = (0..vars.len())
                    .map(|i| row >> (vars.len() - 1 - i) & 1 == 1)
                    .collect();
                let pairs: Vec<(char, bool)> = vars
                    .iter()
                    .copied()
                    .zip(assignment.iter().copied())
                    .collect();
                assert_eq!(
                    nl.eval(&assignment).unwrap()[0],
                    e.eval(&pairs),
                    "{src} row {row}"
                );
            }
        }
    }

    #[test]
    fn constant_expressions_build() {
        for (expr, expected) in [(Expr::Const(true), true), (Expr::Const(false), false)] {
            let nl = Netlist::from_expr(&expr);
            let inputs = vec![false; nl.inputs().len()];
            assert_eq!(nl.eval(&inputs).unwrap()[0], expected);
        }
    }

    #[test]
    fn gate_count_excludes_inputs() {
        let nl = half_adder();
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.gates().len(), 4);
    }
}

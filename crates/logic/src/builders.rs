//! Canonical structural blocks built as netlists: half/full adders,
//! ripple-carry adders, multiplexers and decoders.
//!
//! These are the circuits ChipVQA's "Functional Derivation" and "Logic
//! Design" questions revolve around (the MMMU sample in the paper's Fig. 3
//! is literally a half adder). Building them structurally lets the question
//! generators ask about gate counts, critical paths and behaviour with
//! solver-derived golds.

use crate::netlist::{GateKind, Netlist, NodeId};

/// A half adder: `sum = a ^ b`, `carry = a b`. Outputs are marked
/// `sum`, `carry`.
pub fn half_adder() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let s = nl.add_gate(GateKind::Xor, &[a, b]).expect("arity");
    let c = nl.add_gate(GateKind::And, &[a, b]).expect("arity");
    nl.mark_output(s, "sum");
    nl.mark_output(c, "carry");
    nl
}

/// A full adder over inputs `a`, `b`, `cin`; outputs `sum`, `cout`.
pub fn full_adder() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let cin = nl.add_input("cin");
    let axb = nl.add_gate(GateKind::Xor, &[a, b]).expect("arity");
    let s = nl.add_gate(GateKind::Xor, &[axb, cin]).expect("arity");
    let ab = nl.add_gate(GateKind::And, &[a, b]).expect("arity");
    let axb_cin = nl.add_gate(GateKind::And, &[axb, cin]).expect("arity");
    let cout = nl.add_gate(GateKind::Or, &[ab, axb_cin]).expect("arity");
    nl.mark_output(s, "sum");
    nl.mark_output(cout, "cout");
    nl
}

/// An `n`-bit ripple-carry adder. Inputs are ordered
/// `a0..a(n-1), b0..b(n-1), cin` (LSB first); outputs `s0..s(n-1), cout`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 16`.
pub fn ripple_carry_adder(n: usize) -> Netlist {
    assert!((1..=16).contains(&n), "adder width must be 1..=16");
    let mut nl = Netlist::new();
    let a: Vec<NodeId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let mut carry = nl.add_input("cin");
    let mut sums = Vec::new();
    for i in 0..n {
        let axb = nl.add_gate(GateKind::Xor, &[a[i], b[i]]).expect("arity");
        let s = nl.add_gate(GateKind::Xor, &[axb, carry]).expect("arity");
        let ab = nl.add_gate(GateKind::And, &[a[i], b[i]]).expect("arity");
        let axb_c = nl.add_gate(GateKind::And, &[axb, carry]).expect("arity");
        carry = nl.add_gate(GateKind::Or, &[ab, axb_c]).expect("arity");
        sums.push(s);
    }
    for (i, s) in sums.into_iter().enumerate() {
        nl.mark_output(s, format!("s{i}"));
    }
    nl.mark_output(carry, "cout");
    nl
}

/// Adds two `n`-bit unsigned numbers through a ripple-carry netlist,
/// returning `(sum_mod_2n, carry_out)`. Used to cross-check the structural
/// adder against arithmetic.
pub fn simulate_adder(nl: &Netlist, n: usize, a: u64, b: u64, cin: bool) -> (u64, bool) {
    let mut inputs = Vec::with_capacity(2 * n + 1);
    for i in 0..n {
        inputs.push(a >> i & 1 == 1);
    }
    for i in 0..n {
        inputs.push(b >> i & 1 == 1);
    }
    inputs.push(cin);
    let out = nl.eval(&inputs).expect("input vector sized for the adder");
    let mut sum = 0u64;
    for (i, &bit) in out[..n].iter().enumerate() {
        if bit {
            sum |= 1 << i;
        }
    }
    (sum, out[n])
}

/// A 2:1 multiplexer: output = `sel ? d1 : d0`. Inputs `d0, d1, sel`.
pub fn mux2() -> Netlist {
    let mut nl = Netlist::new();
    let d0 = nl.add_input("d0");
    let d1 = nl.add_input("d1");
    let sel = nl.add_input("sel");
    let nsel = nl.add_gate(GateKind::Not, &[sel]).expect("arity");
    let t0 = nl.add_gate(GateKind::And, &[d0, nsel]).expect("arity");
    let t1 = nl.add_gate(GateKind::And, &[d1, sel]).expect("arity");
    let y = nl.add_gate(GateKind::Or, &[t0, t1]).expect("arity");
    nl.mark_output(y, "y");
    nl
}

/// A `n`-to-`2^n` one-hot decoder with inputs `a0..a(n-1)` (LSB first) and
/// outputs `y0..y(2^n-1)`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 5`.
pub fn decoder(n: usize) -> Netlist {
    assert!((1..=5).contains(&n), "decoder width must be 1..=5");
    let mut nl = Netlist::new();
    let inputs: Vec<NodeId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let inverted: Vec<NodeId> = inputs
        .iter()
        .map(|&i| nl.add_gate(GateKind::Not, &[i]).expect("arity"))
        .collect();
    for code in 0..(1usize << n) {
        let terms: Vec<NodeId> = (0..n)
            .map(|bit| {
                if code >> bit & 1 == 1 {
                    inputs[bit]
                } else {
                    inverted[bit]
                }
            })
            .collect();
        let y = if terms.len() == 1 {
            nl.add_gate(GateKind::Buf, &[terms[0]]).expect("arity")
        } else {
            nl.add_gate(GateKind::And, &terms).expect("arity")
        };
        nl.mark_output(y, format!("y{code}"));
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_adder_all_rows() {
        let nl = full_adder();
        for a in 0..2u8 {
            for b in 0..2u8 {
                for c in 0..2u8 {
                    let out = nl.eval(&[a == 1, b == 1, c == 1]).unwrap();
                    let total = a + b + c;
                    assert_eq!(out[0], total & 1 == 1, "sum for {a}{b}{c}");
                    assert_eq!(out[1], total >= 2, "cout for {a}{b}{c}");
                }
            }
        }
    }

    #[test]
    fn ripple_carry_matches_arithmetic() {
        let n = 6;
        let nl = ripple_carry_adder(n);
        for a in [0u64, 1, 7, 31, 63] {
            for b in [0u64, 1, 5, 32, 63] {
                for cin in [false, true] {
                    let (sum, cout) = simulate_adder(&nl, n, a, b, cin);
                    let full = a + b + u64::from(cin);
                    assert_eq!(sum, full & 0x3F, "{a}+{b}+{cin}");
                    assert_eq!(cout, full > 0x3F, "{a}+{b}+{cin}");
                }
            }
        }
    }

    #[test]
    fn adder_gate_count_scales_linearly() {
        // 5 gates per bit for this construction.
        assert_eq!(ripple_carry_adder(4).gate_count(), 20);
        assert_eq!(ripple_carry_adder(8).gate_count(), 40);
    }

    #[test]
    fn ripple_depth_grows_with_width() {
        let d4 = ripple_carry_adder(4).depth();
        let d8 = ripple_carry_adder(8).depth();
        assert!(d8 > d4, "carry chain must deepen: {d4} vs {d8}");
    }

    #[test]
    fn mux_selects() {
        let nl = mux2();
        assert_eq!(nl.eval(&[true, false, false]).unwrap(), vec![true]);
        assert_eq!(nl.eval(&[true, false, true]).unwrap(), vec![false]);
        assert_eq!(nl.eval(&[false, true, true]).unwrap(), vec![true]);
    }

    #[test]
    fn decoder_is_one_hot() {
        let nl = decoder(3);
        for code in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|b| code >> b & 1 == 1).collect();
            let out = nl.eval(&inputs).unwrap();
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == code, "code {code} output {i}");
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn adder_correct_for_all_inputs(a in 0u64..256, b in 0u64..256, cin: bool) {
                let nl = ripple_carry_adder(8);
                let (sum, cout) = simulate_adder(&nl, 8, a, b, cin);
                let full = a + b + u64::from(cin);
                prop_assert_eq!(sum, full & 0xFF);
                prop_assert_eq!(cout, full > 0xFF);
            }
        }
    }
}

//! Boolean expression AST, textbook-syntax parser, evaluation, truth
//! tables and semantic equivalence.
//!
//! The parser accepts the notation chip-design textbooks (and the ChipVQA
//! answer choices) use: postfix `'` for complement, juxtaposition or `&`
//! for AND, `+` or `|` for OR, `^` for XOR, `!`/`~` as prefix complement,
//! and `0`/`1` constants. Operator precedence is `'`/`!` over AND over XOR
//! over OR.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum number of distinct variables for truth-table construction.
pub const MAX_TABLE_VARS: usize = 20;

/// A boolean expression over single-character variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// Constant `0` or `1`.
    Const(bool),
    /// A named variable (`A`, `q`, …). Case-sensitive.
    Var(char),
    /// Logical complement.
    Not(Box<Expr>),
    /// Conjunction of two or more terms.
    And(Vec<Expr>),
    /// Disjunction of two or more terms.
    Or(Vec<Expr>),
    /// Exclusive or.
    Xor(Box<Expr>, Box<Expr>),
}

/// Error parsing a boolean expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    message: String,
    position: usize,
}

impl ParseExprError {
    /// Byte offset in the input where parsing failed.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.position)
    }
}

impl std::error::Error for ParseExprError {}

/// Error raised when an operation would need a truth table over too many
/// variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TooManyVarsError {
    /// Number of variables requested.
    pub vars: usize,
}

impl fmt::Display for TooManyVarsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "expression has {} variables, more than the supported {}",
            self.vars, MAX_TABLE_VARS
        )
    }
}

impl std::error::Error for TooManyVarsError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseExprError {
        ParseExprError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && (self.src[self.pos] as char).is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.src.get(self.pos).map(|&b| b as char)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    /// expr := xorterm ( ('+'|'|') xorterm )*
    fn expr(&mut self) -> Result<Expr, ParseExprError> {
        let mut terms = vec![self.xorterm()?];
        while matches!(self.peek(), Some('+') | Some('|')) {
            self.bump();
            terms.push(self.xorterm()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("nonempty")
        } else {
            Expr::Or(terms)
        })
    }

    /// xorterm := term ( '^' term )*
    fn xorterm(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.term()?;
        while self.peek() == Some('^') {
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// term := factor ( '&'? factor )*   (juxtaposition is AND)
    fn term(&mut self) -> Result<Expr, ParseExprError> {
        let mut factors = vec![self.factor()?];
        loop {
            match self.peek() {
                Some('&') => {
                    self.bump();
                    factors.push(self.factor()?);
                }
                Some(c) if c.is_ascii_alphabetic() || c == '(' || c == '!' || c == '~' => {
                    factors.push(self.factor()?);
                }
                Some('0') | Some('1') => {
                    factors.push(self.factor()?);
                }
                _ => break,
            }
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("nonempty")
        } else {
            Expr::And(factors)
        })
    }

    /// factor := atom "'"*
    fn factor(&mut self) -> Result<Expr, ParseExprError> {
        let mut e = self.atom()?;
        while self.peek() == Some('\'') {
            self.bump();
            e = Expr::Not(Box::new(e));
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, ParseExprError> {
        match self.peek() {
            Some('(') => {
                self.bump();
                let inner = self.expr()?;
                if self.peek() != Some(')') {
                    return Err(self.error("expected ')'"));
                }
                self.bump();
                Ok(inner)
            }
            Some('!') | Some('~') => {
                self.bump();
                Ok(Expr::Not(Box::new(self.factor()?)))
            }
            Some('0') => {
                self.bump();
                Ok(Expr::Const(false))
            }
            Some('1') => {
                self.bump();
                Ok(Expr::Const(true))
            }
            Some(c) if c.is_ascii_alphabetic() => {
                self.bump();
                Ok(Expr::Var(c))
            }
            Some(c) => Err(self.error(format!("unexpected character '{c}'"))),
            None => Err(self.error("unexpected end of expression")),
        }
    }
}

impl Expr {
    /// Parses textbook boolean notation.
    ///
    /// # Errors
    ///
    /// Returns [`ParseExprError`] on malformed input (unbalanced
    /// parentheses, dangling operators, illegal characters).
    ///
    /// # Example
    ///
    /// ```
    /// use chipvqa_logic::expr::Expr;
    ///
    /// let e = Expr::parse("A'B + AB'")?; // an XOR in SOP form
    /// assert!(e.equivalent(&Expr::parse("A ^ B")?)?);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn parse(src: &str) -> Result<Expr, ParseExprError> {
        let mut p = Parser::new(src);
        let e = p.expr()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.error("trailing characters after expression"));
        }
        Ok(e)
    }

    /// Evaluates the expression under `assign`, a function from variable
    /// name to value.
    pub fn eval_with(&self, assign: &dyn Fn(char) -> bool) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(v) => assign(*v),
            Expr::Not(e) => !e.eval_with(assign),
            Expr::And(es) => es.iter().all(|e| e.eval_with(assign)),
            Expr::Or(es) => es.iter().any(|e| e.eval_with(assign)),
            Expr::Xor(a, b) => a.eval_with(assign) ^ b.eval_with(assign),
        }
    }

    /// Evaluates under an explicit `(variable, value)` assignment list;
    /// unassigned variables read as `false`.
    pub fn eval(&self, assignment: &[(char, bool)]) -> bool {
        self.eval_with(&|v| {
            assignment
                .iter()
                .find(|(name, _)| *name == v)
                .map(|&(_, val)| val)
                .unwrap_or(false)
        })
    }

    /// The set of distinct variables, in sorted order.
    pub fn vars(&self) -> Vec<char> {
        let mut set = BTreeSet::new();
        self.collect_vars(&mut set);
        set.into_iter().collect()
    }

    fn collect_vars(&self, out: &mut BTreeSet<char>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(*v);
            }
            Expr::Not(e) => e.collect_vars(out),
            Expr::And(es) | Expr::Or(es) => es.iter().for_each(|e| e.collect_vars(out)),
            Expr::Xor(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Builds the truth table over this expression's own variables.
    ///
    /// # Errors
    ///
    /// Returns [`TooManyVarsError`] if the expression mentions more than
    /// [`MAX_TABLE_VARS`] variables.
    pub fn truth_table(&self) -> Result<TruthTable, TooManyVarsError> {
        self.truth_table_over(&self.vars())
    }

    /// Builds the truth table over an explicit variable ordering (which
    /// must be a superset of the expression's variables for a faithful
    /// table; extra variables become don't-affect columns).
    ///
    /// # Errors
    ///
    /// Returns [`TooManyVarsError`] if `vars` is longer than
    /// [`MAX_TABLE_VARS`].
    pub fn truth_table_over(&self, vars: &[char]) -> Result<TruthTable, TooManyVarsError> {
        if vars.len() > MAX_TABLE_VARS {
            return Err(TooManyVarsError { vars: vars.len() });
        }
        let n = vars.len();
        let rows = 1usize << n;
        let mut outputs = Vec::with_capacity(rows);
        for row in 0..rows {
            let value = self.eval_with(&|v| {
                vars.iter()
                    .position(|&x| x == v)
                    // MSB-first convention: variable 0 is the high bit.
                    .map(|i| row >> (n - 1 - i) & 1 == 1)
                    .unwrap_or(false)
            });
            outputs.push(value);
        }
        Ok(TruthTable {
            vars: vars.to_vec(),
            outputs,
        })
    }

    /// Semantic equivalence: equal truth tables over the union of both
    /// variable sets.
    ///
    /// # Errors
    ///
    /// Returns [`TooManyVarsError`] if the union exceeds
    /// [`MAX_TABLE_VARS`].
    pub fn equivalent(&self, other: &Expr) -> Result<bool, TooManyVarsError> {
        let mut vars: BTreeSet<char> = self.vars().into_iter().collect();
        vars.extend(other.vars());
        let vars: Vec<char> = vars.into_iter().collect();
        let a = self.truth_table_over(&vars)?;
        let b = other.truth_table_over(&vars)?;
        Ok(a.outputs == b.outputs)
    }

    /// Structural complexity: number of AST nodes. Used as a difficulty
    /// proxy by the question generators.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Not(e) => 1 + e.node_count(),
            Expr::And(es) | Expr::Or(es) => 1 + es.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Xor(a, b) => 1 + a.node_count() + b.node_count(),
        }
    }

    /// Number of literal occurrences (variable references).
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(_) => 1,
            Expr::Not(e) => e.literal_count(),
            Expr::And(es) | Expr::Or(es) => es.iter().map(Expr::literal_count).sum(),
            Expr::Xor(a, b) => a.literal_count() + b.literal_count(),
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        // precedence: Or=1, Xor=2, And=3, Not/atom=4
        let prec = match self {
            Expr::Or(_) => 1,
            Expr::Xor(..) => 2,
            Expr::And(_) => 3,
            _ => 4,
        };
        let parens = prec < parent;
        if parens {
            write!(f, "(")?;
        }
        match self {
            Expr::Const(b) => write!(f, "{}", if *b { '1' } else { '0' })?,
            Expr::Var(v) => write!(f, "{v}")?,
            Expr::Not(e) => match e.as_ref() {
                Expr::Var(v) => write!(f, "{v}'")?,
                Expr::Const(b) => write!(f, "{}'", if *b { '1' } else { '0' })?,
                inner => {
                    write!(f, "(")?;
                    inner.fmt_prec(f, 1)?;
                    write!(f, ")'")?;
                }
            },
            Expr::And(es) => {
                for e in es {
                    e.fmt_prec(f, 3)?;
                }
            }
            Expr::Or(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    e.fmt_prec(f, 1)?;
                }
            }
            Expr::Xor(a, b) => {
                a.fmt_prec(f, 3)?;
                write!(f, " ^ ")?;
                b.fmt_prec(f, 3)?;
            }
        }
        if parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// A complete truth table over an ordered variable list.
///
/// Row `i` assigns the variables from the binary expansion of `i`,
/// MSB-first: `vars[0]` is the most significant bit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthTable {
    /// Input variable ordering (MSB first).
    pub vars: Vec<char>,
    /// Output for each of the `2^n` input rows.
    pub outputs: Vec<bool>,
}

impl TruthTable {
    /// Constructs a table directly from a variable ordering and the output
    /// column.
    ///
    /// # Panics
    ///
    /// Panics if `outputs.len() != 2^vars.len()`.
    pub fn new(vars: Vec<char>, outputs: Vec<bool>) -> Self {
        assert_eq!(
            outputs.len(),
            1usize << vars.len(),
            "output column must have 2^n rows"
        );
        TruthTable { vars, outputs }
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Indices of rows whose output is `1` (the minterm list).
    pub fn minterms(&self) -> Vec<usize> {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect()
    }

    /// The output for a specific input row index.
    pub fn output(&self, row: usize) -> Option<bool> {
        self.outputs.get(row).copied()
    }

    /// Value of variable `var` on `row` under the MSB-first convention.
    pub fn input_bit(&self, row: usize, var: usize) -> bool {
        row >> (self.vars.len() - 1 - var) & 1 == 1
    }

    /// The canonical sum-of-minterms expression for this table.
    pub fn to_canonical_sop(&self) -> Expr {
        let minterms = self.minterms();
        if minterms.is_empty() {
            return Expr::Const(false);
        }
        if minterms.len() == self.outputs.len() {
            return Expr::Const(true);
        }
        let terms: Vec<Expr> = minterms
            .into_iter()
            .map(|m| {
                let factors: Vec<Expr> = self
                    .vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if self.input_bit(m, i) {
                            Expr::Var(v)
                        } else {
                            Expr::Not(Box::new(Expr::Var(v)))
                        }
                    })
                    .collect();
                if factors.len() == 1 {
                    factors.into_iter().next().expect("one factor")
                } else {
                    Expr::And(factors)
                }
            })
            .collect();
        if terms.len() == 1 {
            terms.into_iter().next().expect("one term")
        } else {
            Expr::Or(terms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Expr {
        Expr::parse(s).expect(s)
    }

    #[test]
    fn parses_primes_and_juxtaposition() {
        let e = p("S'Q + SR'");
        assert_eq!(e.vars(), vec!['Q', 'R', 'S']);
        assert!(e.eval(&[('S', false), ('Q', true), ('R', false)]));
        assert!(e.eval(&[('S', true), ('R', false), ('Q', false)]));
        assert!(!e.eval(&[('S', true), ('R', true), ('Q', true)]));
    }

    #[test]
    fn parses_alternative_operators() {
        assert!(p("A & B | !C").equivalent(&p("AB + C'")).unwrap());
        assert!(p("~A").equivalent(&p("A'")).unwrap());
        assert!(p("A ^ B").equivalent(&p("A'B + AB'")).unwrap());
    }

    #[test]
    fn parse_constants() {
        assert!(p("1").eval(&[]));
        assert!(!p("0").eval(&[]));
        assert!(p("A + 1").equivalent(&Expr::Const(true)).unwrap());
        assert!(p("A & 0").equivalent(&Expr::Const(false)).unwrap());
    }

    #[test]
    fn precedence_not_over_and_over_xor_over_or() {
        // A + B C ^ D == A + ((B&C) ^ D)
        let e = p("A + BC ^ D");
        assert!(e.eval(&[('A', false), ('B', true), ('C', true), ('D', false)]));
        assert!(!e.eval(&[('A', false), ('B', true), ('C', true), ('D', true)]));
        assert!(e.eval(&[('A', true), ('B', true), ('C', true), ('D', true)]));
    }

    #[test]
    fn double_prime_cancels() {
        assert!(p("A''").equivalent(&p("A")).unwrap());
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = Expr::parse("A + ").unwrap_err();
        assert!(err.position() >= 3, "{err}");
        assert!(Expr::parse("(A + B").is_err());
        assert!(Expr::parse("A $ B").is_err());
        assert!(Expr::parse("").is_err());
    }

    #[test]
    fn display_roundtrips_semantics() {
        for src in [
            "S'Q + SR'",
            "(A + B)'C",
            "A ^ B ^ C",
            "A(B + C')",
            "AB + A'B' + C",
            "1",
            "0",
        ] {
            let e = p(src);
            let printed = e.to_string();
            let re = p(&printed);
            assert!(
                e.equivalent(&re).unwrap(),
                "{src} printed as {printed} changed meaning"
            );
        }
    }

    #[test]
    fn truth_table_msb_convention() {
        let e = p("AB'");
        let tt = e.truth_table().unwrap();
        assert_eq!(tt.vars, vec!['A', 'B']);
        // rows: 00, 01, 10, 11 -> A=1,B=0 is row 2
        assert_eq!(tt.outputs, vec![false, false, true, false]);
        assert_eq!(tt.minterms(), vec![2]);
        assert!(tt.input_bit(2, 0));
        assert!(!tt.input_bit(2, 1));
    }

    #[test]
    fn canonical_sop_matches_table() {
        let e = p("A ^ B ^ C");
        let tt = e.truth_table().unwrap();
        let sop = tt.to_canonical_sop();
        assert!(e.equivalent(&sop).unwrap());
    }

    #[test]
    fn canonical_sop_extremes() {
        let zero = p("AA'");
        assert_eq!(
            zero.truth_table().unwrap().to_canonical_sop(),
            Expr::Const(false)
        );
        let one = p("A + A'");
        assert_eq!(
            one.truth_table().unwrap().to_canonical_sop(),
            Expr::Const(true)
        );
    }

    #[test]
    fn equivalence_distinguishes() {
        assert!(!p("A + B").equivalent(&p("AB")).unwrap());
        assert!(p("(AB)'").equivalent(&p("A' + B'")).unwrap()); // De Morgan
        assert!(p("(A + B)'").equivalent(&p("A'B'")).unwrap());
    }

    #[test]
    fn too_many_vars_rejected() {
        // Build an AND over 21 distinct variables.
        let vars: Vec<Expr> = ('a'..='u').map(Expr::Var).collect();
        assert_eq!(vars.len(), 21);
        let e = Expr::And(vars);
        assert!(e.truth_table().is_err());
    }

    #[test]
    fn node_and_literal_counts() {
        let e = p("S'Q + SR'");
        assert_eq!(e.literal_count(), 4);
        assert!(e.node_count() >= 7);
    }

    #[test]
    fn truth_table_new_panics_on_bad_len() {
        let r = std::panic::catch_unwind(|| TruthTable::new(vec!['A'], vec![true]));
        assert!(r.is_err());
    }
}

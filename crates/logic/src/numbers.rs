//! Number representation: two's complement, Gray code, BCD and signed
//! arithmetic with overflow — the "Data Representation" topic of the
//! Digital Design question set.

use std::fmt;

/// Error for values that do not fit in a requested bit width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeError {
    /// The value that failed to fit.
    pub value: i64,
    /// Target width in bits.
    pub width: u32,
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} does not fit in {} two's-complement bits",
            self.value, self.width
        )
    }
}

impl std::error::Error for RangeError {}

/// Encodes `value` in `width`-bit two's complement.
///
/// # Errors
///
/// [`RangeError`] when the value is outside `[-2^(w-1), 2^(w-1) - 1]`.
///
/// # Example
///
/// ```
/// use chipvqa_logic::numbers::twos_complement;
///
/// assert_eq!(twos_complement(-1, 8)?, 0xFF);
/// assert_eq!(twos_complement(-128, 8)?, 0x80);
/// assert!(twos_complement(128, 8).is_err());
/// # Ok::<(), chipvqa_logic::numbers::RangeError>(())
/// ```
pub fn twos_complement(value: i64, width: u32) -> Result<u64, RangeError> {
    assert!((1..=63).contains(&width), "width must be 1..=63");
    let min = -(1i64 << (width - 1));
    let max = (1i64 << (width - 1)) - 1;
    if value < min || value > max {
        return Err(RangeError { value, width });
    }
    Ok((value as u64) & ((1u64 << width) - 1))
}

/// Decodes a `width`-bit two's-complement pattern to a signed value.
///
/// # Panics
///
/// Panics if `bits` has set bits above `width`.
pub fn from_twos_complement(bits: u64, width: u32) -> i64 {
    assert!((1..=63).contains(&width), "width must be 1..=63");
    assert!(bits >> width == 0, "pattern wider than {width} bits");
    let sign = bits >> (width - 1) & 1;
    if sign == 1 {
        bits as i64 - (1i64 << width)
    } else {
        bits as i64
    }
}

/// Result of a width-limited signed addition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddResult {
    /// The wrapped `width`-bit sum pattern.
    pub bits: u64,
    /// The signed value the pattern represents.
    pub value: i64,
    /// Signed overflow flag (result sign inconsistent with operands).
    pub overflow: bool,
    /// Carry out of the MSB.
    pub carry_out: bool,
}

/// Adds two signed values in `width`-bit two's complement, reporting
/// overflow and carry exactly as an ALU status register would.
///
/// # Errors
///
/// [`RangeError`] if either operand does not fit in `width` bits.
pub fn add_twos_complement(a: i64, b: i64, width: u32) -> Result<AddResult, RangeError> {
    let pa = twos_complement(a, width)?;
    let pb = twos_complement(b, width)?;
    let full = pa + pb;
    let mask = (1u64 << width) - 1;
    let bits = full & mask;
    let carry_out = full >> width & 1 == 1;
    let value = from_twos_complement(bits, width);
    let overflow = (a >= 0) == (b >= 0) && (value >= 0) != (a >= 0);
    Ok(AddResult {
        bits,
        value,
        overflow,
        carry_out,
    })
}

/// Converts binary to Gray code.
pub fn to_gray(n: u64) -> u64 {
    n ^ (n >> 1)
}

/// Converts Gray code back to binary (prefix-xor over halving shifts).
pub fn from_gray(g: u64) -> u64 {
    let mut b = g;
    b ^= b >> 1;
    b ^= b >> 2;
    b ^= b >> 4;
    b ^= b >> 8;
    b ^= b >> 16;
    b ^= b >> 32;
    b
}

/// Packs a decimal number into BCD (4 bits per digit).
///
/// # Panics
///
/// Panics when the value needs more than 16 BCD digits (u64 capacity).
pub fn to_bcd(mut value: u64) -> u64 {
    let mut out = 0u64;
    let mut shift = 0;
    loop {
        assert!(shift < 64, "value too large for 16 BCD digits");
        out |= (value % 10) << shift;
        value /= 10;
        if value == 0 {
            break;
        }
        shift += 4;
    }
    out
}

/// Unpacks BCD back to a decimal number.
pub fn from_bcd(mut bcd: u64) -> u64 {
    let mut out = 0u64;
    let mut scale = 1u64;
    while bcd > 0 {
        out += (bcd & 0xF) * scale;
        scale *= 10;
        bcd >>= 4;
    }
    out
}

/// Value of a fixed-point pattern with `frac_bits` fractional bits
/// (Q-format), interpreting `bits` as `width`-bit two's complement.
pub fn fixed_point_value(bits: u64, width: u32, frac_bits: u32) -> f64 {
    from_twos_complement(bits, width) as f64 / f64::from(1u32 << frac_bits.min(31))
}

/// Smallest representable step of a Q-format with `frac_bits` fractional
/// bits.
pub fn fixed_point_resolution(frac_bits: u32) -> f64 {
    1.0 / f64::from(1u32 << frac_bits.min(31))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twos_complement_boundaries() {
        assert_eq!(twos_complement(127, 8).unwrap(), 0x7F);
        assert_eq!(twos_complement(-128, 8).unwrap(), 0x80);
        assert!(twos_complement(128, 8).is_err());
        assert!(twos_complement(-129, 8).is_err());
    }

    #[test]
    fn decode_roundtrip() {
        for v in [-128i64, -1, 0, 1, 127] {
            let bits = twos_complement(v, 8).unwrap();
            assert_eq!(from_twos_complement(bits, 8), v);
        }
    }

    #[test]
    fn addition_overflow_cases() {
        // 127 + 1 overflows in 8 bits
        let r = add_twos_complement(127, 1, 8).unwrap();
        assert!(r.overflow);
        assert_eq!(r.value, -128);
        assert!(!r.carry_out);
        // -1 + -1 produces carry but no overflow
        let r = add_twos_complement(-1, -1, 8).unwrap();
        assert!(!r.overflow);
        assert_eq!(r.value, -2);
        assert!(r.carry_out);
        // mixed signs never overflow
        let r = add_twos_complement(-100, 100, 8).unwrap();
        assert!(!r.overflow);
        assert_eq!(r.value, 0);
    }

    #[test]
    fn gray_code_adjacent_values_differ_by_one_bit() {
        for n in 0u64..256 {
            let a = to_gray(n);
            let b = to_gray(n + 1);
            assert_eq!((a ^ b).count_ones(), 1, "n={n}");
        }
    }

    #[test]
    fn gray_roundtrip() {
        for n in 0u64..1024 {
            assert_eq!(from_gray(to_gray(n)), n);
        }
    }

    #[test]
    fn bcd_roundtrip_and_packing() {
        assert_eq!(to_bcd(1995), 0x1995);
        assert_eq!(from_bcd(0x1995), 1995);
        for n in [0u64, 9, 10, 99, 12345, 9999999] {
            assert_eq!(from_bcd(to_bcd(n)), n);
        }
    }

    #[test]
    fn fixed_point() {
        // Q4.4: pattern 0b0001_1000 = 1.5
        assert!((fixed_point_value(0b0001_1000, 8, 4) - 1.5).abs() < 1e-12);
        // negative: 0xF8 = -0.5 in Q4.4
        assert!((fixed_point_value(0xF8, 8, 4) + 0.5).abs() < 1e-12);
        assert!((fixed_point_resolution(4) - 0.0625).abs() < 1e-12);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn encode_decode_roundtrip(v in -(1i64 << 15)..(1i64 << 15)) {
                let bits = twos_complement(v, 16).unwrap();
                prop_assert_eq!(from_twos_complement(bits, 16), v);
            }

            #[test]
            fn add_matches_wrapping_semantics(a in -128i64..=127, b in -128i64..=127) {
                let r = add_twos_complement(a, b, 8).unwrap();
                let wrapped = ((a + b + 128).rem_euclid(256)) - 128;
                prop_assert_eq!(r.value, wrapped);
                prop_assert_eq!(r.overflow, a + b > 127 || a + b < -128);
            }

            #[test]
            fn gray_bijective(n in 0u64..(1 << 20)) {
                prop_assert_eq!(from_gray(to_gray(n)), n);
            }
        }
    }
}

//! Clocked sequential circuits: a combinational next-state netlist wired
//! through D flip-flops.
//!
//! This closes the loop the Digital Design questions walk through by
//! hand: *state table → minimised next-state equations (QM) → gate-level
//! netlist → cycle-accurate simulation* — and the property tests verify
//! that the whole chain agrees with direct state-table simulation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::expr::Expr;
use crate::netlist::Netlist;
use crate::seq::StateTable;

/// A synchronous circuit: `state_bits` D flip-flops feeding a
/// combinational netlist whose first inputs are the state bits (MSB
/// first) followed by the primary inputs, and whose first
/// `state_bits` outputs are the next-state functions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockedCircuit {
    netlist: Netlist,
    state_bits: usize,
    state: Vec<bool>,
}

/// Error constructing a clocked circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    message: String,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clocked circuit shape: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

impl ClockedCircuit {
    /// Wraps a netlist as a clocked circuit with `state_bits` registers
    /// (initialised to zero).
    ///
    /// # Errors
    ///
    /// [`ShapeError`] when the netlist has fewer inputs or outputs than
    /// `state_bits`.
    pub fn new(netlist: Netlist, state_bits: usize) -> Result<Self, ShapeError> {
        if netlist.inputs().len() < state_bits {
            return Err(ShapeError {
                message: format!(
                    "{} inputs cannot carry {state_bits} state bits",
                    netlist.inputs().len()
                ),
            });
        }
        if netlist.outputs().len() < state_bits {
            return Err(ShapeError {
                message: format!(
                    "{} outputs cannot produce {state_bits} next-state bits",
                    netlist.outputs().len()
                ),
            });
        }
        Ok(ClockedCircuit {
            netlist,
            state_bits,
            state: vec![false; state_bits],
        })
    }

    /// Synthesises a clocked circuit from a [`StateTable`]: each state
    /// bit's next-state function is derived with Quine–McCluskey and
    /// mapped to gates.
    pub fn from_state_table(table: &StateTable) -> ClockedCircuit {
        let mut vars = table.state_var_names();
        vars.extend(table.input_names().iter().copied());
        let outputs: Vec<(String, Expr)> = (0..table.state_bits())
            .map(|bit| (format!("d{bit}"), table.next_state_expr(bit)))
            .collect();
        let named: Vec<(&str, Expr)> = outputs
            .iter()
            .map(|(n, e)| (n.as_str(), e.clone()))
            .collect();
        let netlist = Netlist::from_exprs(&named, &vars);
        ClockedCircuit::new(netlist, table.state_bits())
            .expect("synthesised netlist matches the table's shape")
    }

    /// Current register state as an integer (MSB-first).
    pub fn state(&self) -> usize {
        self.state
            .iter()
            .fold(0usize, |acc, &b| (acc << 1) | usize::from(b))
    }

    /// Resets the registers to a specific state.
    ///
    /// # Panics
    ///
    /// Panics if the state does not fit in the register width.
    pub fn reset_to(&mut self, state: usize) {
        assert!(state < 1 << self.state_bits, "state out of range");
        for (i, b) in self.state.iter_mut().enumerate() {
            *b = state >> (self.state_bits - 1 - i) & 1 == 1;
        }
    }

    /// One clock edge: evaluates the combinational logic on
    /// `(state, inputs)` and latches the next state. Returns the new
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the netlist's primary-input
    /// count minus the state bits.
    pub fn step(&mut self, inputs: &[bool]) -> usize {
        let expected = self.netlist.inputs().len() - self.state_bits;
        assert_eq!(inputs.len(), expected, "need {expected} inputs");
        let mut vector = self.state.clone();
        vector.extend_from_slice(inputs);
        let out = self
            .netlist
            .eval(&vector)
            .expect("vector sized to the netlist");
        self.state.copy_from_slice(&out[..self.state_bits]);
        self.state()
    }

    /// Runs an input sequence (each element is the packed input bits,
    /// MSB-first) and returns the state trace including the initial
    /// state.
    pub fn run(&mut self, inputs: &[usize]) -> Vec<usize> {
        let width = self.netlist.inputs().len() - self.state_bits;
        let mut trace = vec![self.state()];
        for &packed in inputs {
            let bits: Vec<bool> = (0..width)
                .map(|b| packed >> (width - 1 - b) & 1 == 1)
                .collect();
            trace.push(self.step(&bits));
        }
        trace
    }

    /// The underlying combinational netlist (for gate counts and
    /// rendering).
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::FlipFlop;

    fn counter_table() -> StateTable {
        // 2-bit up counter with enable
        let mut rows = Vec::new();
        for s in 0..4usize {
            for e in 0..2usize {
                rows.push((s + e) % 4);
            }
        }
        StateTable::new(2, vec!['E'], rows).expect("valid dimensions")
    }

    #[test]
    fn synthesised_counter_counts() {
        let mut ckt = ClockedCircuit::from_state_table(&counter_table());
        let trace = ckt.run(&[1, 1, 1, 1, 1]);
        assert_eq!(trace, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn enable_low_holds_state() {
        let mut ckt = ClockedCircuit::from_state_table(&counter_table());
        ckt.reset_to(2);
        let trace = ckt.run(&[0, 0, 1, 0]);
        assert_eq!(trace, vec![2, 2, 2, 3, 3]);
    }

    #[test]
    fn paper_example_machine_in_gates() {
        let table = StateTable::paper_example();
        let mut ckt = ClockedCircuit::from_state_table(&table);
        // inputs packed as (S << 1) | R
        for start in 0..2usize {
            for input in 0..4usize {
                ckt.reset_to(start);
                let next = ckt.run(&[input])[1];
                assert_eq!(next, table.next(start, input), "s={start} in={input}");
            }
        }
        assert!(ckt.netlist().gate_count() > 0);
    }

    #[test]
    fn shape_errors() {
        let nl = Netlist::new();
        assert!(ClockedCircuit::new(nl, 1).is_err());
    }

    #[test]
    fn reset_bounds() {
        let mut ckt = ClockedCircuit::from_state_table(&counter_table());
        ckt.reset_to(3);
        assert_eq!(ckt.state(), 3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ckt.reset_to(4)));
        assert!(r.is_err());
    }

    #[test]
    fn flip_flop_tables_synthesise() {
        for ff in [FlipFlop::D, FlipFlop::T, FlipFlop::Jk] {
            let (table, _) = StateTable::of_flip_flop(ff);
            let mut ckt = ClockedCircuit::from_state_table(&table);
            // D flip-flop: state follows packed input bit
            if ff == FlipFlop::D {
                assert_eq!(ckt.run(&[1, 0, 1]), vec![0, 1, 0, 1]);
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// QM -> gates -> clocked simulation agrees with direct
            /// state-table simulation for random 2-bit machines.
            #[test]
            fn gate_level_matches_table(
                rows in proptest::collection::vec(0usize..4, 8),
                inputs in proptest::collection::vec(0usize..2, 0..12),
                start in 0usize..4,
            ) {
                let table = StateTable::new(2, vec!['E'], rows).expect("shape fixed");
                let mut ckt = ClockedCircuit::from_state_table(&table);
                ckt.reset_to(start);
                let gate_trace = ckt.run(&inputs);
                let table_trace = table.run(start, &inputs);
                prop_assert_eq!(gate_trace, table_trace);
            }
        }
    }
}

//! Hot-path benches for the compute side of the perf trajectory:
//! raster primitives, per-substrate render time, per-category
//! generation, patch-grid perception, cache-hit replay, executor
//! worker scaling, and scaled build-vs-stream — everything the
//! streamed `table2 --scale N` grid spends its time in.
//!
//! Run with `CRITERION_JSON=… cargo bench -p chipvqa-bench --bench
//! hotpath` to append machine-readable trend lines (the source of
//! `BENCH_hotpath.json`). Set `CHIPVQA_HOTPATH_SCALE=10,100` (any
//! comma-separated scale list) to additionally take one-shot macro
//! timings of the full streamed `table2` grid at those scales — these
//! are minutes-long whole-grid runs, so they are opt-in and measured
//! once rather than sampled.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chipvqa_bench::run_table2_scaled;
use chipvqa_core::{ChipVqa, DatasetSpec, BASE_SIZE};
use chipvqa_eval::harness::EvalOptions;
use chipvqa_eval::{AnswerCache, ParallelExecutor};
use chipvqa_logic::builders::full_adder;
use chipvqa_logic::render::{
    render_kmap, render_schematic, render_state_table, render_truth_table, render_waveform,
};
use chipvqa_logic::{StateTable, TruthTable};
use chipvqa_models::encoder::perceive;
use chipvqa_models::{ModelZoo, VlmPipeline};
use chipvqa_raster::Pixmap;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pixmap_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_pixmap");
    group.sample_size(20);

    group.bench_function("fill_rect_300x200", |b| {
        let mut img = Pixmap::new(400, 300);
        b.iter(|| {
            img.fill_rect(40, 40, 300, 200, 96);
            black_box(img.pixels()[0])
        })
    });
    group.bench_function("draw_line_axis", |b| {
        let mut img = Pixmap::new(400, 300);
        b.iter(|| {
            img.draw_line(10, 150, 390, 150, 3, 0);
            img.draw_line(200, 10, 200, 290, 3, 0);
            black_box(img.pixels()[0])
        })
    });
    group.bench_function("draw_line_diagonal", |b| {
        let mut img = Pixmap::new(400, 300);
        b.iter(|| {
            img.draw_line(10, 10, 390, 290, 2, 0);
            black_box(img.pixels()[0])
        })
    });
    group.bench_function("fill_circle_r60", |b| {
        let mut img = Pixmap::new(400, 300);
        b.iter(|| {
            img.fill_circle(200, 150, 60, 32);
            black_box(img.pixels()[0])
        })
    });
    group.bench_function("draw_text_2x", |b| {
        let mut img = Pixmap::new(400, 300);
        b.iter(|| black_box(img.draw_text(8, 8, "VDD RAIL: 1.8V nominal swing", 2, 0)))
    });
    group.bench_function("downsample_4", |b| {
        let mut img = Pixmap::new(640, 480);
        img.fill_rect(100, 100, 400, 260, 64);
        img.draw_text(20, 20, "downsample substrate", 2, 0);
        b.iter(|| black_box(img.downsample(4)))
    });
    group.bench_function("ink_pixels_640x480", |b| {
        let mut img = Pixmap::new(640, 480);
        img.fill_rect(100, 100, 400, 260, 64);
        b.iter(|| black_box(img.ink_pixels()))
    });
    group.bench_function("to_ascii_cell8", |b| {
        let mut img = Pixmap::new(640, 480);
        img.fill_rect(100, 100, 400, 260, 64);
        img.draw_text(20, 20, "ascii substrate", 2, 0);
        b.iter(|| black_box(img.to_ascii(8)))
    });

    group.finish();
}

fn bench_mark_renderers(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_render");
    group.sample_size(20);

    let tt = TruthTable::new(
        vec!['a', 'b', 'c'],
        vec![false, true, true, false, true, false, false, true],
    );
    group.bench_function("truth_table", |b| {
        b.iter(|| black_box(render_truth_table(&tt, "F")))
    });
    group.bench_function("kmap", |b| b.iter(|| black_box(render_kmap(&tt))));
    let nl = full_adder();
    group.bench_function("schematic_full_adder", |b| {
        b.iter(|| black_box(render_schematic(&nl)))
    });
    let st = StateTable::paper_example();
    group.bench_function("state_table", |b| {
        b.iter(|| black_box(render_state_table(&st)))
    });
    let clk = [true, false].repeat(8);
    let data = [true, true, false, false].repeat(4);
    let signals: Vec<(&str, &[bool])> = vec![("clk", &clk), ("d", &data)];
    group.bench_function("waveform", |b| {
        b.iter(|| black_box(render_waveform(&signals)))
    });

    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    use chipvqa_core::gen;
    let mut group = c.benchmark_group("hotpath_gen");
    group.sample_size(10);

    let seed = 0xC41Fu64;
    group.bench_function("digital_replica", |b| {
        b.iter(|| black_box(gen::digital::generate_replica(seed, 1)))
    });
    group.bench_function("analog_replica", |b| {
        b.iter(|| black_box(gen::analog::generate_replica(seed, 1)))
    });
    group.bench_function("architecture_replica", |b| {
        b.iter(|| black_box(gen::architecture::generate_replica(seed, 1)))
    });
    group.bench_function("manufacturing_replica", |b| {
        b.iter(|| black_box(gen::manufacturing::generate_replica(seed, 1)))
    });
    group.bench_function("physical_replica", |b| {
        b.iter(|| black_box(gen::physical::generate_replica(seed, 1)))
    });

    group.finish();
}

fn bench_encoder(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let mut group = c.benchmark_group("hotpath_encode");
    group.sample_size(10);

    for res in [336usize, 1024] {
        let mut profile = ModelZoo::gpt4o();
        profile.encoder_resolution = res;
        group.bench_with_input(
            BenchmarkId::new("perceive_142", res),
            &profile,
            |b, profile| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    let mut seen = 0usize;
                    for q in bench.iter() {
                        seen += perceive(profile, q, 1, &mut rng).perceived.len();
                    }
                    black_box(seen)
                })
            },
        );
    }

    group.finish();
}

fn bench_executor_scaling(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let mut group = c.benchmark_group("hotpath_executor");
    group.sample_size(10);

    for workers in [1usize, 2, 4, 8] {
        let exec = ParallelExecutor::new(workers);
        group.bench_with_input(
            BenchmarkId::new("evaluate_142", workers),
            &exec,
            |b, exec| b.iter(|| black_box(exec.evaluate(&pipe, &bench, EvalOptions::default()))),
        );
    }

    // warm cache: populate once, then measure pure replay + judging
    let cache = Arc::new(AnswerCache::new());
    let exec = ParallelExecutor::new(4).with_cache(Arc::clone(&cache));
    exec.evaluate(&pipe, &bench, EvalOptions::default());
    group.bench_function("cache_hit_142", |b| {
        b.iter(|| black_box(exec.evaluate(&pipe, &bench, EvalOptions::default())))
    });

    group.finish();
}

fn bench_build_vs_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_stream");
    group.sample_size(10);

    let spec = DatasetSpec::scaled(4);
    group.bench_function("build_scale4", |b| b.iter(|| black_box(spec.build())));
    group.bench_function("stream_scale4", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for shard in spec.stream(BASE_SIZE) {
                n += black_box(shard).len();
            }
            black_box(n)
        })
    });

    group.finish();
}

/// One-shot macro timings of the full streamed `table2 --scale N` grid
/// (all twelve zoo models, standard and challenge columns). Opt-in via
/// `CHIPVQA_HOTPATH_SCALE` because each run takes minutes; the recorded
/// `hotpath_macro/streamed_table2/N` lines anchor the committed ≥2×
/// speedup ratio in `BENCH_hotpath.json`.
fn bench_streamed_table2_macro(_c: &mut Criterion) {
    let Ok(scales) = std::env::var("CHIPVQA_HOTPATH_SCALE") else {
        return;
    };
    if !std::env::args().any(|a| a == "--bench") {
        return; // smoke mode: never run minutes-long grids under cargo test
    }
    for scale in scales
        .split(',')
        .filter_map(|s| s.trim().parse::<usize>().ok())
    {
        let start = Instant::now();
        let table = run_table2_scaled(scale, 4);
        let elapsed = start.elapsed();
        black_box(&table);
        criterion::export_measurement(&format!("hotpath_macro/streamed_table2/{scale}"), elapsed);
    }
}

criterion_group!(
    benches,
    bench_pixmap_primitives,
    bench_mark_renderers,
    bench_generators,
    bench_encoder,
    bench_executor_scaling,
    bench_build_vs_stream,
    bench_streamed_table2_macro,
);
criterion_main!(benches);

//! Chaos benches: what supervision costs.
//!
//! Three rows on the same single-model evaluation: the plain executor,
//! the supervised executor with the all-zero [`FaultPlan`] (the pure
//! overhead of deadlines + breaker bookkeeping on the happy path — this
//! must stay within noise of the plain row), and a supervised run under
//! a realistic storm (retries, corrupt-and-recover, breaker churn).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chipvqa_core::ChipVqa;
use chipvqa_eval::fault::install_quiet_panic_hook;
use chipvqa_eval::harness::EvalOptions;
use chipvqa_eval::{FaultPlan, ParallelExecutor, Supervisor};
use chipvqa_models::{ModelZoo, VlmPipeline};

fn bench_supervision_overhead(c: &mut Criterion) {
    install_quiet_panic_hook();
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::llama_3_2_90b());
    let mut group = c.benchmark_group("chaos_single_model");
    group.sample_size(10);

    let plain = ParallelExecutor::new(4);
    group.bench_function("unsupervised_142", |b| {
        b.iter(|| black_box(plain.evaluate(&pipe, &bench, EvalOptions::default())))
    });

    let zero = ParallelExecutor::new(4).with_supervisor(Supervisor::new(FaultPlan::none()));
    group.bench_function("supervised_zero_fault_142", |b| {
        b.iter(|| black_box(zero.evaluate(&pipe, &bench, EvalOptions::default())))
    });

    for rate in [0.01f64, 0.05] {
        let stormy =
            ParallelExecutor::new(4).with_supervisor(Supervisor::new(FaultPlan::uniform(7, rate)));
        group.bench_with_input(
            BenchmarkId::new("supervised_storm_142", format!("{rate:.2}")),
            &stormy,
            |b, exec| b.iter(|| black_box(exec.evaluate(&pipe, &bench, EvalOptions::default()))),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_supervision_overhead);
criterion_main!(benches);

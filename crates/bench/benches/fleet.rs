//! Fleet-execution benches: the coordination overhead of running a
//! grid through the lease protocol versus evaluating it directly, plus
//! the micro costs of the protocol itself (claim/release round-trips,
//! merge of a committed fleet directory).
//!
//! Run with `CRITERION_JSON=BENCH_fleet.json cargo bench --bench fleet`
//! to export the machine-readable summary CI tracks as the perf
//! trajectory.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use chipvqa_core::ChipVqa;
use chipvqa_eval::fleet::{self, FleetConfig, FleetJob};
use chipvqa_eval::harness::EvalOptions;
use chipvqa_eval::{ParallelExecutor, RuleJudge};
use chipvqa_models::{ModelZoo, VlmPipeline};
use chipvqa_telemetry::Telemetry;

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "chipvqa-fleet-bench-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn grid() -> (Vec<VlmPipeline>, ChipVqa) {
    (
        vec![
            VlmPipeline::new(ModelZoo::gpt4o()),
            VlmPipeline::new(ModelZoo::fuyu_8b()),
        ],
        ChipVqa::standard(),
    )
}

fn quick_config() -> FleetConfig {
    FleetConfig {
        heartbeat_interval: Duration::from_millis(50),
        idle_backoff: Duration::from_millis(1),
        ..FleetConfig::default()
    }
}

/// The coordination tax: one worker driving the whole grid through
/// lease files versus the same executor evaluating the grid directly.
fn bench_fleet_vs_direct(c: &mut Criterion) {
    let (pipes, bench) = grid();
    let exec = ParallelExecutor::new(4);
    let mut group = c.benchmark_group("fleet_grid");
    group.sample_size(10);

    group.bench_function("direct_grid", |b| {
        b.iter(|| {
            black_box(exec.evaluate_grid(&pipes, &bench, EvalOptions::default(), &RuleJudge::new()))
        })
    });

    group.bench_function("one_worker_fleet", |b| {
        b.iter(|| {
            let dir = fresh_dir("solo");
            let job = FleetJob {
                pipes: &pipes,
                bench: &bench,
                options: EvalOptions::default(),
                spec_fingerprint: None,
                store_generation: None,
            };
            let out = fleet::run_worker(&dir, &exec, &job, &RuleJudge::new(), &quick_config())
                .expect("worker runs");
            let _ = std::fs::remove_dir_all(&dir);
            black_box(out)
        })
    });

    group.finish();
}

/// Merge cost over a fully committed fleet directory — the fold a
/// driver pays once per run, after the workers are done.
fn bench_merge(c: &mut Criterion) {
    let (pipes, bench) = grid();
    let exec = ParallelExecutor::new(4);
    let dir = fresh_dir("merge");
    let job = FleetJob {
        pipes: &pipes,
        bench: &bench,
        options: EvalOptions::default(),
        spec_fingerprint: None,
        store_generation: None,
    };
    fleet::run_worker(&dir, &exec, &job, &RuleJudge::new(), &quick_config())
        .expect("fleet completes");

    let mut group = c.benchmark_group("fleet_merge");
    group.sample_size(10);
    group.bench_function("merge_committed_fleet", |b| {
        b.iter(|| black_box(fleet::merge(&dir, &job, &Telemetry::disabled()).expect("merges")))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_fleet_vs_direct, bench_merge);
criterion_main!(benches);

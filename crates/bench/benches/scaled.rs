//! Scaled-dataset benches: materialised generation vs shard-streamed
//! generation, and batch evaluation of a pre-built scaled collection vs
//! the streaming intake that overlaps generation with inference.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chipvqa_core::{DatasetSpec, BASE_SIZE};
use chipvqa_eval::harness::EvalOptions;
use chipvqa_eval::ParallelExecutor;
use chipvqa_models::{ModelZoo, VlmPipeline};

fn bench_scaled_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaled_generation");
    group.sample_size(10);

    for scale in [1usize, 4] {
        let spec = DatasetSpec::scaled(scale);
        group.bench_with_input(BenchmarkId::new("build", scale), &spec, |b, spec| {
            b.iter(|| black_box(spec.build()))
        });
        group.bench_with_input(BenchmarkId::new("stream", scale), &spec, |b, spec| {
            b.iter(|| {
                let mut n = 0usize;
                for shard in spec.stream(BASE_SIZE) {
                    n += black_box(shard).len();
                }
                black_box(n)
            })
        });
    }

    group.finish();
}

fn bench_scaled_eval(c: &mut Criterion) {
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let mut group = c.benchmark_group("scaled_eval");
    group.sample_size(10);

    for scale in [1usize, 4] {
        let spec = DatasetSpec::scaled(scale);
        let built = spec.build();
        let exec = ParallelExecutor::new(4);
        group.bench_with_input(
            BenchmarkId::new("batch_prebuilt", scale),
            &built,
            |b, built| b.iter(|| black_box(exec.evaluate(&pipe, built, EvalOptions::default()))),
        );
        group.bench_with_input(BenchmarkId::new("streamed", scale), &spec, |b, spec| {
            b.iter(|| {
                black_box(exec.evaluate_spec_stream(&pipe, spec, BASE_SIZE, EvalOptions::default()))
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_scaled_generation, bench_scaled_eval);
criterion_main!(benches);

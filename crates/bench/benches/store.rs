//! Persistent answer-store benches: the cold-vs-warm evaluation gap the
//! store exists to create, plus the micro costs that bound it (append,
//! lookup, replay-on-open, compaction).
//!
//! Run with `CRITERION_JSON=BENCH_store.json cargo bench --bench store`
//! to export the machine-readable summary CI tracks as the perf
//! trajectory.

use std::hint::black_box;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use chipvqa_core::ChipVqa;
use chipvqa_eval::harness::EvalOptions;
use chipvqa_eval::store::{AnswerStore, StoreConfig};
use chipvqa_eval::{AnswerCache, CacheKey, CachedAnswer, ParallelExecutor};
use chipvqa_models::backbone::AnswerPath;
use chipvqa_models::{ModelZoo, VlmPipeline};

fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "chipvqa-store-bench-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(i: u64) -> CacheKey {
    CacheKey {
        model_fingerprint: 0xbe5c ^ (i % 12),
        question_id: format!("digital-{i:05}"),
        prompt_hash: i.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        downsample: 1,
        attempt: 0,
        dataset_fingerprint: 42,
    }
}

fn answer(i: u64) -> CachedAnswer {
    CachedAnswer {
        text: format!("the net toggles at cycle {i} because the enable gate masks clk"),
        path: AnswerPath::Solved,
        solve_probability: 0.3,
    }
}

/// Cold vs warm full evaluation of the standard 142-question bench —
/// the headline number: a warm run replays disk answers instead of
/// running inference.
fn bench_cold_vs_warm_eval(c: &mut Criterion) {
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let bench = ChipVqa::standard();
    let mut group = c.benchmark_group("store_eval");
    group.sample_size(10);

    group.bench_function("cold", |b| {
        b.iter(|| {
            let dir = fresh_dir("cold");
            let store = Arc::new(AnswerStore::open(&dir).expect("store opens"));
            let cache = Arc::new(AnswerCache::new().with_store(store));
            let exec = ParallelExecutor::new(4).with_cache(cache);
            let report = exec.evaluate(&pipe, &bench, EvalOptions::default());
            let _ = std::fs::remove_dir_all(&dir);
            black_box(report)
        })
    });

    // populate once; each warm iteration reopens like a fresh process
    let warm_dir = fresh_dir("warm");
    {
        let store = Arc::new(AnswerStore::open(&warm_dir).expect("store opens"));
        let cache = Arc::new(AnswerCache::new().with_store(store));
        let exec = ParallelExecutor::new(4).with_cache(cache);
        black_box(exec.evaluate(&pipe, &bench, EvalOptions::default()));
    }
    group.bench_function("warm_restart", |b| {
        b.iter(|| {
            let store = Arc::new(AnswerStore::open(&warm_dir).expect("store reopens"));
            let cache = Arc::new(AnswerCache::new().with_store(store));
            let exec = ParallelExecutor::new(4).with_cache(cache);
            black_box(exec.evaluate(&pipe, &bench, EvalOptions::default()))
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&warm_dir);
}

/// Micro costs: append and lookup throughput, replay-on-open, and a
/// compaction over a half-dead store.
fn bench_store_micro(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_micro");
    group.sample_size(10);

    group.bench_function("insert_1k", |b| {
        b.iter(|| {
            let dir = fresh_dir("insert");
            let store = AnswerStore::open(&dir).expect("store opens");
            for i in 0..1_000u64 {
                store.insert(key(i), answer(i));
            }
            store.flush().expect("flushes");
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
        })
    });

    let lookup_dir = fresh_dir("lookup");
    let lookup_store = AnswerStore::open(&lookup_dir).expect("store opens");
    for i in 0..1_000u64 {
        lookup_store.insert(key(i), answer(i));
    }
    group.bench_function("lookup_1k", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for i in 0..1_000u64 {
                found += usize::from(lookup_store.lookup(&key(i)).is_some());
            }
            black_box(found)
        })
    });

    let replay_dir = fresh_dir("replay");
    {
        let store = AnswerStore::open(&replay_dir).expect("store opens");
        for i in 0..1_000u64 {
            store.insert(key(i), answer(i));
        }
    }
    group.bench_function("replay_open_1k", |b| {
        b.iter(|| black_box(AnswerStore::open(&replay_dir).expect("store reopens").len()))
    });

    group.bench_function("compact_half_dead_1k", |b| {
        b.iter(|| {
            let dir = fresh_dir("compact");
            let store = AnswerStore::open_with(
                &dir,
                StoreConfig {
                    segment_max_bytes: 64 << 10,
                    ..StoreConfig::default()
                },
            )
            .expect("store opens");
            for i in 0..1_000u64 {
                store.insert(key(i), answer(i));
            }
            for i in 0..500u64 {
                store.insert(key(i), answer(i + 10_000));
            }
            let reclaimed = store.compact().expect("compacts");
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
            black_box(reclaimed)
        })
    });

    group.finish();
    drop(lookup_store);
    let _ = std::fs::remove_dir_all(&lookup_dir);
}

criterion_group!(benches, bench_cold_vs_warm_eval, bench_store_micro);
criterion_main!(benches);

//! R1 benches: the resolution-degradation study (perception over
//! downsampled images) at each factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chipvqa_core::question::Category;
use chipvqa_core::ChipVqa;
use chipvqa_eval::harness::{evaluate, EvalOptions};
use chipvqa_models::{ModelZoo, VlmPipeline};

fn bench_resolution(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());

    let mut group = c.benchmark_group("resolution");
    group.sample_size(10);
    for factor in [1usize, 8, 16] {
        group.bench_with_input(
            BenchmarkId::new("digital_eval_at", factor),
            &factor,
            |b, &factor| {
                b.iter(|| {
                    let report = evaluate(
                        &pipe,
                        &bench,
                        EvalOptions {
                            attempts: 1,
                            downsample: factor,
                        },
                    );
                    black_box(report.category_rate(Category::Digital))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_resolution);
criterion_main!(benches);

//! T2 benches: zero-shot evaluation throughput — single inference, one
//! model over the whole collection, and the full twelve-model Table II.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chipvqa_bench::run_table2;
use chipvqa_core::ChipVqa;
use chipvqa_eval::harness::{evaluate, EvalOptions};
use chipvqa_models::{ModelZoo, VlmPipeline};

fn bench_zero_shot(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let gpt = VlmPipeline::new(ModelZoo::gpt4o());

    let mut group = c.benchmark_group("zero_shot");
    group.sample_size(10);

    let q = &bench.questions()[0];
    group.bench_function("single_inference", |b| {
        b.iter(|| black_box(gpt.infer(q, 1, 0)))
    });

    group.bench_function("gpt4o_full_142", |b| {
        b.iter(|| black_box(evaluate(&gpt, &bench, EvalOptions::default())))
    });

    group.bench_function("table2_all_12_models", |b| {
        b.iter(|| black_box(run_table2(&bench)))
    });

    group.finish();
}

criterion_group!(benches, bench_zero_shot);
criterion_main!(benches);

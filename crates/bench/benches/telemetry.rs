//! Telemetry cost benches: the same single-model evaluation with no
//! telemetry field touched (baseline), with an explicitly attached
//! disabled handle (must be within noise of the baseline — the
//! `telemetry_overhead` binary gates this in CI), and with a fully
//! enabled handle feeding metrics plus an in-memory trace sink (the
//! price of actually recording).

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use chipvqa_core::ChipVqa;
use chipvqa_eval::harness::EvalOptions;
use chipvqa_eval::ParallelExecutor;
use chipvqa_models::{ModelZoo, VlmPipeline};
use chipvqa_telemetry::{MemorySink, Telemetry};

fn bench_telemetry_modes(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let mut group = c.benchmark_group("telemetry_single_model");
    group.sample_size(10);

    let baseline = ParallelExecutor::new(4);
    group.bench_function("baseline_142", |b| {
        b.iter(|| black_box(baseline.evaluate(&pipe, &bench, EvalOptions::default())))
    });

    let noop = ParallelExecutor::new(4).with_telemetry(Telemetry::disabled());
    group.bench_function("noop_telemetry_142", |b| {
        b.iter(|| black_box(noop.evaluate(&pipe, &bench, EvalOptions::default())))
    });

    let recording = ParallelExecutor::new(4).with_telemetry(Telemetry::recording());
    group.bench_function("recording_telemetry_142", |b| {
        b.iter(|| black_box(recording.evaluate(&pipe, &bench, EvalOptions::default())))
    });

    let sink = Arc::new(MemorySink::new());
    let sinked =
        ParallelExecutor::new(4).with_telemetry(Telemetry::builder().sink(sink.clone()).build());
    group.bench_function("sinked_telemetry_142", |b| {
        b.iter(|| {
            let report = sinked.evaluate(&pipe, &bench, EvalOptions::default());
            sink.clear();
            black_box(report)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_modes);
criterion_main!(benches);

//! T1 benches: building the 142-question collection, computing Table-I
//! statistics and round-tripping the JSON export.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chipvqa_core::stats::DatasetStats;
use chipvqa_core::ChipVqa;

fn bench_dataset(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);

    group.bench_function("build_standard_142", |b| {
        b.iter(|| black_box(ChipVqa::standard()))
    });

    let bench = ChipVqa::standard();
    group.bench_function("table1_stats", |b| {
        b.iter(|| black_box(DatasetStats::compute(&bench)))
    });

    group.bench_function("challenge_transform", |b| {
        b.iter(|| black_box(bench.challenge()))
    });

    let json = bench.to_json().expect("serializes");
    group.bench_function("json_roundtrip", |b| {
        b.iter(|| black_box(ChipVqa::from_json(&json).expect("deserializes")))
    });

    group.finish();
}

criterion_group!(benches, bench_dataset);
criterion_main!(benches);

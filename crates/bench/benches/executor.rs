//! Executor benches: sequential harness vs the work-stealing
//! [`ParallelExecutor`] vs a warm answer cache, on a single model and on
//! the full twelve-model grid. The warm-cache rows skip inference
//! entirely (answers replayed, judging re-run), which is where the
//! order-of-magnitude win comes from.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use chipvqa_core::ChipVqa;
use chipvqa_eval::harness::{evaluate, EvalOptions};
use chipvqa_eval::{AnswerCache, ParallelExecutor, RuleJudge};
use chipvqa_models::{ModelZoo, VlmPipeline};

fn bench_single_model(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let mut group = c.benchmark_group("executor_single_model");
    group.sample_size(10);

    group.bench_function("sequential_142", |b| {
        b.iter(|| black_box(evaluate(&pipe, &bench, EvalOptions::default())))
    });

    for workers in [2usize, 4, 8] {
        let exec = ParallelExecutor::new(workers);
        group.bench_with_input(
            BenchmarkId::new("parallel_142", workers),
            &exec,
            |b, exec| b.iter(|| black_box(exec.evaluate(&pipe, &bench, EvalOptions::default()))),
        );
    }

    // warm cache: populate once, then measure pure replay + judging
    let cache = Arc::new(AnswerCache::new());
    let exec = ParallelExecutor::new(4).with_cache(Arc::clone(&cache));
    exec.evaluate(&pipe, &bench, EvalOptions::default());
    group.bench_function("warm_cache_142", |b| {
        b.iter(|| black_box(exec.evaluate(&pipe, &bench, EvalOptions::default())))
    });

    group.finish();
}

fn bench_full_grid(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let pipes: Vec<VlmPipeline> = ModelZoo::all().into_iter().map(VlmPipeline::new).collect();
    let mut group = c.benchmark_group("executor_grid_12_models");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            for pipe in &pipes {
                black_box(evaluate(pipe, &bench, EvalOptions::default()));
            }
        })
    });

    let exec = ParallelExecutor::new(8);
    group.bench_function("parallel_8_workers", |b| {
        b.iter(|| {
            black_box(exec.evaluate_grid(&pipes, &bench, EvalOptions::default(), &RuleJudge::new()))
        })
    });

    let cache = Arc::new(AnswerCache::new());
    let cached = ParallelExecutor::new(8).with_cache(Arc::clone(&cache));
    cached.evaluate_grid(&pipes, &bench, EvalOptions::default(), &RuleJudge::new());
    group.bench_function("warm_cache_8_workers", |b| {
        b.iter(|| {
            black_box(cached.evaluate_grid(
                &pipes,
                &bench,
                EvalOptions::default(),
                &RuleJudge::new(),
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_single_model, bench_full_grid);
criterion_main!(benches);

//! Ablation benches for the design choices DESIGN.md calls out: they
//! *measure* (and print once per run) how pass rates respond to each
//! simulator mechanism, demonstrating that the headline effects are
//! emergent rather than hard-coded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chipvqa_core::ChipVqa;
use chipvqa_eval::harness::{evaluate, EvalOptions};
use chipvqa_models::{ModelZoo, VlmPipeline};

/// Ablation 1 (perception): sweep visual acuity and measure the pass
/// rate — shows the perception mechanism carries real weight.
fn ablation_perception(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let mut group = c.benchmark_group("ablation_perception");
    group.sample_size(10);
    for acuity in [0.0f64, 0.5, 1.0] {
        let mut profile = ModelZoo::gpt4o();
        profile.visual_acuity = acuity;
        profile.name = format!("gpt4o-acuity-{acuity}");
        let pipe = VlmPipeline::new(profile);
        group.bench_with_input(
            BenchmarkId::new("acuity", format!("{acuity:.1}")),
            &acuity,
            |b, _| b.iter(|| black_box(evaluate(&pipe, &bench, EvalOptions::default()).overall())),
        );
    }
    group.finish();
}

/// Ablation 2 (choices as RAG): the same model with elimination disabled
/// versus full — isolates the MC guessing machinery behind the paper's
/// "choices offer retrieval augmentation" observation.
fn ablation_elimination(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let mut group = c.benchmark_group("ablation_elimination");
    group.sample_size(10);
    for elim in [0.0f64, 0.95] {
        let mut profile = ModelZoo::gpt4o();
        profile.mc_elimination = elim;
        profile.name = format!("gpt4o-elim-{elim}");
        let pipe = VlmPipeline::new(profile);
        group.bench_with_input(
            BenchmarkId::new("mc_elimination", format!("{elim:.2}")),
            &elim,
            |b, _| b.iter(|| black_box(evaluate(&pipe, &bench, EvalOptions::default()).overall())),
        );
    }
    group.finish();
}

/// Ablation 3 (knowledge scaling): the LLaVA backbone-scaling claim —
/// pass rate as the knowledge/reasoning axes scale together.
fn ablation_knowledge(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let mut group = c.benchmark_group("ablation_knowledge");
    group.sample_size(10);
    for scale in [0.5f64, 1.0, 1.5] {
        let mut profile = ModelZoo::llava_7b();
        for k in &mut profile.knowledge {
            *k = (*k * scale).min(1.0);
        }
        profile.reasoning = (profile.reasoning * scale).min(1.0);
        profile.name = format!("llava-scale-{scale}");
        let pipe = VlmPipeline::new(profile);
        group.bench_with_input(
            BenchmarkId::new("backbone_scale", format!("{scale:.1}")),
            &scale,
            |b, _| b.iter(|| black_box(evaluate(&pipe, &bench, EvalOptions::default()).overall())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_perception,
    ablation_elimination,
    ablation_knowledge
);
criterion_main!(benches);

//! T3 benches: the agent system's tool-call loop versus plain inference.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chipvqa_agent::AgentSystem;
use chipvqa_core::ChipVqa;
use chipvqa_models::{ModelZoo, VlmPipeline};

fn bench_agent(c: &mut Criterion) {
    let bench = ChipVqa::standard();
    let agent = AgentSystem::paper_setup();
    let base = VlmPipeline::new(ModelZoo::gpt4o());
    let q = bench.get("manuf-000").expect("canonical id");

    let mut group = c.benchmark_group("agent");
    group.sample_size(10);

    group.bench_function("plain_gpt4o_single", |b| {
        b.iter(|| black_box(base.infer(q, 1, 0)))
    });

    group.bench_function("agent_tool_loop_single", |b| {
        b.iter(|| black_box(agent.answer(q, 0)))
    });

    group.bench_function("agent_full_142", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for q in bench.iter() {
                n += agent.answer(q, 0).text.len();
            }
            black_box(n)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_agent);
criterion_main!(benches);

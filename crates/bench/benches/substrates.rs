//! Substrate microbenches: the domain solvers the benchmark's golden
//! answers come from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chipvqa_analog::mna::Circuit;
use chipvqa_arch::cache::{Cache, CacheConfig, Replacement};
use chipvqa_arch::isa::{program, Reg};
use chipvqa_arch::pipeline::{ForwardingConfig, Pipeline};
use chipvqa_logic::minimize::minimize;
use chipvqa_logic::Expr;
use chipvqa_physd::geom::Point;
use chipvqa_physd::maze::Grid;
use chipvqa_physd::steiner::{rmst_cost, rsmt_cost};

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");

    // Quine–McCluskey over a dense 6-variable function.
    let minterms: Vec<usize> = (0..64).filter(|i| i % 3 != 0).collect();
    group.bench_function("qm_minimize_6var", |b| {
        b.iter(|| black_box(minimize(6, &minterms, &[])))
    });

    let e = Expr::parse("A'BC + AB'C + ABC' + A'B'C' + ABD").expect("parses");
    group.bench_function("expr_truth_table", |b| {
        b.iter(|| black_box(e.truth_table().expect("small")))
    });

    // MNA: a 12-node resistive ladder with a VCCS.
    group.bench_function("mna_ladder_solve", |b| {
        b.iter(|| {
            let mut ckt = Circuit::new();
            ckt.add_voltage_source(1, 0, 5.0);
            for n in 1..12 {
                ckt.add_resistor(n, n + 1, 1_000.0);
                ckt.add_resistor(n + 1, 0, 2_200.0);
            }
            ckt.add_vccs(12, 0, 1, 0, 2e-3);
            black_box(ckt.solve().expect("well-posed"))
        })
    });

    // Maze routing across a 64x64 grid with a wall.
    let mut grid = Grid::new(64, 64);
    grid.block_rect(32, 0, 1, 60);
    group.bench_function("maze_route_64x64", |b| {
        b.iter(|| {
            black_box(
                grid.route(Point::new(2, 2), Point::new(60, 60))
                    .expect("routable"),
            )
        })
    });

    // Steiner vs spanning over 8 pins.
    let pins: Vec<Point> = (0..8)
        .map(|i| Point::new((i * 37) % 50, (i * 23) % 50))
        .collect();
    group.bench_function("rsmt_8pins", |b| b.iter(|| black_box(rsmt_cost(&pins))));
    group.bench_function("rmst_8pins", |b| b.iter(|| black_box(rmst_cost(&pins))));

    // Pipeline simulation of a 300-instruction hazard-rich program.
    let mut builder = program();
    for i in 0..100 {
        builder = builder
            .load(Reg(1), Reg(0), 4 * i)
            .add(Reg(2), Reg(1), Reg(1))
            .store(Reg(2), Reg(0), 8 * i);
    }
    let prog = builder.build();
    group.bench_function("pipeline_300_instrs", |b| {
        b.iter(|| black_box(Pipeline::new(ForwardingConfig::full()).run(&prog)))
    });

    // Cache trace of 10k accesses.
    let trace: Vec<u64> = (0..10_000u64).map(|i| (i * 97) % 65_536).collect();
    group.bench_function("cache_10k_trace", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig {
                size_bytes: 32 * 1024,
                block_bytes: 64,
                associativity: 4,
                replacement: Replacement::Lru,
            })
            .expect("geometry valid");
            black_box(cache.run_trace(&trace))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);

//! Shared helpers for the ChipVQA benchmark harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;
use std::sync::Arc;

use chipvqa_core::{ChipVqa, DatasetSpec, BASE_SIZE};
use chipvqa_eval::harness::{evaluate, EvalOptions};
use chipvqa_eval::report::{ModelRow, Table2};
use chipvqa_eval::{AnswerCache, AnswerStore, CacheStats, ParallelExecutor};
use chipvqa_models::{ModelZoo, VlmPipeline};
use chipvqa_telemetry::Telemetry;

/// Runs the full Table-II evaluation: every zoo model on the standard and
/// challenge collections.
pub fn run_table2(bench: &ChipVqa) -> Table2 {
    let challenge = bench.challenge();
    let rows = ModelZoo::all()
        .into_iter()
        .map(|profile| {
            let pipe = VlmPipeline::new(profile);
            ModelRow {
                standard: evaluate(&pipe, bench, EvalOptions::default()),
                challenge: evaluate(&pipe, &challenge, EvalOptions::default()),
            }
        })
        .collect();
    Table2 { rows }
}

/// Runs the Table-II evaluation on an N×-scaled collection: every zoo
/// model on [`DatasetSpec::scaled`]`(scale)` (with-choice column) and
/// the same spec at `mc_sa_ratio` 0 (no-choice column). Questions are
/// streamed shard-by-shard through the executor — generation overlapped
/// with inference — so the collection is never materialised whole.
pub fn run_table2_scaled(scale: usize, workers: usize) -> Table2 {
    let standard = DatasetSpec::scaled(scale);
    let challenge = standard.clone().with_mc_sa_ratio(0.0);
    let exec = ParallelExecutor::new(workers);
    let rows = ModelZoo::all()
        .into_iter()
        .map(|profile| {
            let pipe = VlmPipeline::new(profile);
            let (std_report, _) =
                exec.evaluate_spec_stream(&pipe, &standard, BASE_SIZE, EvalOptions::default());
            let (chal_report, _) =
                exec.evaluate_spec_stream(&pipe, &challenge, BASE_SIZE, EvalOptions::default());
            ModelRow {
                standard: std_report,
                challenge: chal_report,
            }
        })
        .collect();
    Table2 { rows }
}

/// [`run_table2_scaled`] backed by a persistent [`AnswerStore`] at
/// `store_dir`: a cache with the store attached is shared across the
/// whole grid, so a rerun in a fresh process serves every answer from
/// disk and never touches the inference path (a warm start). Returns
/// the table plus the shared cache's final stats — `store_hits`,
/// `warm_hit_rate` and the run-spanning `lifetime_*` counters tell a
/// driver how warm the run actually was. The store is flushed before
/// returning.
///
/// Determinism contract: the table (and every `EvalReport` in it, up
/// to the `cache_stats` run metadata) is byte-identical to a cold
/// [`run_table2_scaled`] run — the pipeline is deterministic per cache
/// key, so a disk hit returns exactly what inference would have.
pub fn run_table2_scaled_with_store(
    scale: usize,
    workers: usize,
    store_dir: &Path,
    telemetry: Telemetry,
) -> std::io::Result<(Table2, CacheStats)> {
    let store = Arc::new(AnswerStore::open_with_telemetry(
        store_dir,
        chipvqa_eval::StoreConfig::default(),
        telemetry.clone(),
    )?);
    let cache = Arc::new(AnswerCache::new().with_store(store));
    let standard = DatasetSpec::scaled(scale);
    let challenge = standard.clone().with_mc_sa_ratio(0.0);
    let exec = ParallelExecutor::new(workers)
        .with_cache(Arc::clone(&cache))
        .with_telemetry(telemetry);
    let rows = ModelZoo::all()
        .into_iter()
        .map(|profile| {
            let pipe = VlmPipeline::new(profile);
            let (std_report, _) =
                exec.evaluate_spec_stream(&pipe, &standard, BASE_SIZE, EvalOptions::default());
            let (chal_report, _) =
                exec.evaluate_spec_stream(&pipe, &challenge, BASE_SIZE, EvalOptions::default());
            ModelRow {
                standard: std_report,
                challenge: chal_report,
            }
        })
        .collect();
    cache.flush_store()?;
    Ok((Table2 { rows }, cache.stats()))
}

/// The paper's Table II reference numbers `(standard all, challenge all)`
/// per model, used for shape comparison in harness output.
pub fn paper_reference() -> Vec<(&'static str, f64, f64)> {
    vec![
        ("LLaVA-7b", 0.22, 0.04),
        ("LLaVA-13b", 0.18, 0.06),
        ("LLaVA-34b", 0.24, 0.09),
        ("LLaVA-LLaMa-3", 0.25, 0.06),
        ("NeVA-22b", 0.22, 0.08),
        ("fuyu-8b", 0.16, 0.03),
        ("paligemma", 0.08, 0.03),
        ("kosmos-2", 0.03, 0.03),
        ("phi3-vision", 0.20, 0.08),
        ("VILA-Yi-34B", 0.29, 0.09),
        ("LLaMA-3.2-90B", 0.31, 0.09),
        ("GPT4o", 0.44, 0.20),
    ]
}

/// The paper's GPT-4o per-category reference `(standard, challenge)` in
/// `Category::ALL` order.
pub fn paper_gpt4o_categories() -> [(f64, f64); 5] {
    [
        (0.49, 0.17),
        (0.51, 0.09),
        (0.30, 0.15),
        (0.20, 0.30),
        (0.61, 0.48),
    ]
}

//! Shared helpers for the ChipVQA benchmark harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;
use std::sync::Arc;

use chipvqa_core::{ChipVqa, DatasetSpec, BASE_SIZE};
use chipvqa_eval::fleet::{self, FleetConfig, FleetError, FleetJob, FleetOutcome};
use chipvqa_eval::harness::{evaluate, EvalOptions};
use chipvqa_eval::judge::RuleJudge;
use chipvqa_eval::report::{ModelRow, Table2};
use chipvqa_eval::{AnswerCache, AnswerStore, CacheStats, ParallelExecutor};
use chipvqa_models::{ModelZoo, VlmPipeline};
use chipvqa_telemetry::Telemetry;

/// Runs the full Table-II evaluation: every zoo model on the standard and
/// challenge collections.
pub fn run_table2(bench: &ChipVqa) -> Table2 {
    let challenge = bench.challenge();
    let rows = ModelZoo::all()
        .into_iter()
        .map(|profile| {
            let pipe = VlmPipeline::new(profile);
            ModelRow {
                standard: evaluate(&pipe, bench, EvalOptions::default()),
                challenge: evaluate(&pipe, &challenge, EvalOptions::default()),
            }
        })
        .collect();
    Table2 { rows }
}

/// Runs the Table-II evaluation on an N×-scaled collection: every zoo
/// model on [`DatasetSpec::scaled`]`(scale)` (with-choice column) and
/// the same spec at `mc_sa_ratio` 0 (no-choice column). Questions are
/// streamed shard-by-shard through the executor — generation overlapped
/// with inference — so the collection is never materialised whole.
pub fn run_table2_scaled(scale: usize, workers: usize) -> Table2 {
    let standard = DatasetSpec::scaled(scale);
    let challenge = standard.clone().with_mc_sa_ratio(0.0);
    let exec = ParallelExecutor::new(workers);
    let rows = ModelZoo::all()
        .into_iter()
        .map(|profile| {
            let pipe = VlmPipeline::new(profile);
            let (std_report, _) =
                exec.evaluate_spec_stream(&pipe, &standard, BASE_SIZE, EvalOptions::default());
            let (chal_report, _) =
                exec.evaluate_spec_stream(&pipe, &challenge, BASE_SIZE, EvalOptions::default());
            ModelRow {
                standard: std_report,
                challenge: chal_report,
            }
        })
        .collect();
    Table2 { rows }
}

/// [`run_table2_scaled`] under a [`chipvqa_eval::Supervisor`]:
/// chaos-supervised
/// Table-II at scale. With `streamed` true each column is evaluated
/// through [`ParallelExecutor::evaluate_spec_stream`] (generation
/// overlapped with inference, windowed breaker driven by the producer);
/// with `streamed` false both collections are materialized once and
/// evaluated on the batch supervised path. The two modes produce
/// byte-identical tables — that contract is what the `stream-chaos` CI
/// job `cmp`s.
pub fn run_table2_scaled_supervised(
    scale: usize,
    workers: usize,
    plan: chipvqa_eval::FaultPlan,
    streamed: bool,
    telemetry: Telemetry,
) -> Table2 {
    chipvqa_eval::fault::install_quiet_panic_hook();
    let standard = DatasetSpec::scaled(scale);
    let challenge = standard.clone().with_mc_sa_ratio(0.0);
    let exec = ParallelExecutor::new(workers)
        .with_supervisor(chipvqa_eval::Supervisor::new(plan))
        .with_telemetry(telemetry);
    let rows = if streamed {
        ModelZoo::all()
            .into_iter()
            .map(|profile| {
                let pipe = VlmPipeline::new(profile);
                let (std_report, _) =
                    exec.evaluate_spec_stream(&pipe, &standard, BASE_SIZE, EvalOptions::default());
                let (chal_report, _) =
                    exec.evaluate_spec_stream(&pipe, &challenge, BASE_SIZE, EvalOptions::default());
                ModelRow {
                    standard: std_report,
                    challenge: chal_report,
                }
            })
            .collect()
    } else {
        let standard_bench = standard.build();
        let challenge_bench = challenge.build();
        ModelZoo::all()
            .into_iter()
            .map(|profile| {
                let pipe = VlmPipeline::new(profile);
                ModelRow {
                    standard: exec.evaluate(&pipe, &standard_bench, EvalOptions::default()),
                    challenge: exec.evaluate(&pipe, &challenge_bench, EvalOptions::default()),
                }
            })
            .collect()
    };
    Table2 { rows }
}

/// [`run_table2_scaled`] backed by a persistent [`AnswerStore`] at
/// `store_dir`: a cache with the store attached is shared across the
/// whole grid, so a rerun in a fresh process serves every answer from
/// disk and never touches the inference path (a warm start). Returns
/// the table plus the shared cache's final stats — `store_hits`,
/// `warm_hit_rate` and the run-spanning `lifetime_*` counters tell a
/// driver how warm the run actually was. The store is flushed before
/// returning.
///
/// Determinism contract: the table (and every `EvalReport` in it, up
/// to the `cache_stats` run metadata) is byte-identical to a cold
/// [`run_table2_scaled`] run — the pipeline is deterministic per cache
/// key, so a disk hit returns exactly what inference would have.
pub fn run_table2_scaled_with_store(
    scale: usize,
    workers: usize,
    store_dir: &Path,
    telemetry: Telemetry,
) -> std::io::Result<(Table2, CacheStats)> {
    let store = Arc::new(AnswerStore::open_with_telemetry(
        store_dir,
        chipvqa_eval::StoreConfig::default(),
        telemetry.clone(),
    )?);
    let cache = Arc::new(AnswerCache::new().with_store(store));
    let standard = DatasetSpec::scaled(scale);
    let challenge = standard.clone().with_mc_sa_ratio(0.0);
    let exec = ParallelExecutor::new(workers)
        .with_cache(Arc::clone(&cache))
        .with_telemetry(telemetry);
    let rows = ModelZoo::all()
        .into_iter()
        .map(|profile| {
            let pipe = VlmPipeline::new(profile);
            let (std_report, _) =
                exec.evaluate_spec_stream(&pipe, &standard, BASE_SIZE, EvalOptions::default());
            let (chal_report, _) =
                exec.evaluate_spec_stream(&pipe, &challenge, BASE_SIZE, EvalOptions::default());
            ModelRow {
                standard: std_report,
                challenge: chal_report,
            }
        })
        .collect();
    cache.flush_store()?;
    Ok((Table2 { rows }, cache.stats()))
}

/// The pieces every fleet participant (worker or merge) derives from
/// `--scale N`: the two materialised collections, the model grid, and
/// the per-column [`FleetJob`] identities.
struct FleetPlan {
    standard: ChipVqa,
    challenge: ChipVqa,
    pipes: Vec<VlmPipeline>,
    standard_fp: u64,
    challenge_fp: u64,
}

impl FleetPlan {
    fn new(scale: usize) -> FleetPlan {
        let standard_spec = DatasetSpec::scaled(scale);
        let challenge_spec = standard_spec.clone().with_mc_sa_ratio(0.0);
        FleetPlan {
            standard: standard_spec.build(),
            challenge: challenge_spec.build(),
            pipes: ModelZoo::all().into_iter().map(VlmPipeline::new).collect(),
            standard_fp: standard_spec.fingerprint(),
            challenge_fp: challenge_spec.fingerprint(),
        }
    }

    fn job<'a>(&'a self, bench: &'a ChipVqa, spec_fp: u64, store_gen: Option<u64>) -> FleetJob<'a> {
        FleetJob {
            pipes: &self.pipes,
            bench,
            options: EvalOptions::default(),
            spec_fingerprint: Some(spec_fp),
            store_generation: store_gen,
        }
    }
}

/// Runs one fleet worker over the Table-II grid at `--scale N`: the
/// standard column as a sub-fleet at `DIR/std`, the challenge column at
/// `DIR/chal`, both sharing one answer store at `DIR/store` opened in
/// cooperative shared mode — every process that calls this on the same
/// `dir` joins the same run. Returns the combined contribution of this
/// worker across both columns. Safe to invoke any number of times, from
/// any number of processes, in any kill order: shards already committed
/// are skipped, stale leases are stolen, quarantined shards are healed.
pub fn run_table2_fleet_worker(
    dir: &Path,
    scale: usize,
    workers: usize,
    config: &FleetConfig,
    telemetry: Telemetry,
) -> Result<FleetOutcome, FleetError> {
    let plan = FleetPlan::new(scale);
    let store = Arc::new(AnswerStore::open_shared(
        dir.join("store"),
        chipvqa_eval::StoreConfig::default(),
        telemetry.clone(),
    )?);
    let store_gen = Some(store.generation());
    let cache = Arc::new(AnswerCache::new().with_store(store));
    let exec = ParallelExecutor::new(workers)
        .with_cache(cache)
        .with_telemetry(telemetry);
    let judge = RuleJudge::new();
    let std_out = fleet::run_worker(
        &dir.join("std"),
        &exec,
        &plan.job(&plan.standard, plan.standard_fp, store_gen),
        &judge,
        config,
    )?;
    let chal_out = fleet::run_worker(
        &dir.join("chal"),
        &exec,
        &plan.job(&plan.challenge, plan.challenge_fp, store_gen),
        &judge,
        config,
    )?;
    Ok(FleetOutcome {
        shards_evaluated: std_out.shards_evaluated + chal_out.shards_evaluated,
        shards_healed: std_out.shards_healed + chal_out.shards_healed,
        shards_quarantined: std_out.shards_quarantined + chal_out.shards_quarantined,
        leases_stolen: std_out.leases_stolen + chal_out.leases_stolen,
        steals_lost: std_out.steals_lost + chal_out.steals_lost,
        duplicate_commits: std_out.duplicate_commits + chal_out.duplicate_commits,
    })
}

/// Folds a completed fleet directory into the canonical Table II.
/// Validates both sub-fleet manifests against the `--scale`-derived
/// spec fingerprints and the shared store's *current* generation, so a
/// merge against the wrong scale or a since-compacted store is a
/// structured refusal ([`FleetError::SpecFingerprintMismatch`] /
/// [`FleetError::StoreGenerationMismatch`]) rather than a silently
/// wrong table.
pub fn run_table2_fleet_merge(
    dir: &Path,
    scale: usize,
    telemetry: &Telemetry,
) -> Result<Table2, FleetError> {
    let plan = FleetPlan::new(scale);
    let store_gen = match AnswerStore::open_read_only(dir.join("store")) {
        Ok(store) => Some(store.generation()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(e.into()),
    };
    let std_reports = fleet::merge(
        &dir.join("std"),
        &plan.job(&plan.standard, plan.standard_fp, store_gen),
        telemetry,
    )?;
    let chal_reports = fleet::merge(
        &dir.join("chal"),
        &plan.job(&plan.challenge, plan.challenge_fp, store_gen),
        telemetry,
    )?;
    let rows = std_reports
        .into_iter()
        .zip(chal_reports)
        .map(|(standard, challenge)| ModelRow {
            standard,
            challenge,
        })
        .collect();
    Ok(Table2 { rows })
}

/// The batch-mode equivalent of an evaluation session: each model
/// evaluated sequentially by the plain harness over the materialized
/// spec, wrapped the way the resident service wraps its reports. The
/// serving acceptance contract — and the `chipvqa-load` generator —
/// byte-compare [`SessionReport::canonical_json`] of an admitted
/// session against this reference.
///
/// [`SessionReport::canonical_json`]: chipvqa_serve::SessionReport::canonical_json
pub fn batch_reference_report(
    models: &[chipvqa_models::ModelProfile],
    spec: &DatasetSpec,
    options: EvalOptions,
) -> chipvqa_serve::SessionReport {
    let bench = spec.build();
    chipvqa_serve::SessionReport::new(
        models
            .iter()
            .map(|profile| evaluate(&VlmPipeline::new(profile.clone()), &bench, options))
            .collect(),
    )
}

/// The paper's Table II reference numbers `(standard all, challenge all)`
/// per model, used for shape comparison in harness output.
pub fn paper_reference() -> Vec<(&'static str, f64, f64)> {
    vec![
        ("LLaVA-7b", 0.22, 0.04),
        ("LLaVA-13b", 0.18, 0.06),
        ("LLaVA-34b", 0.24, 0.09),
        ("LLaVA-LLaMa-3", 0.25, 0.06),
        ("NeVA-22b", 0.22, 0.08),
        ("fuyu-8b", 0.16, 0.03),
        ("paligemma", 0.08, 0.03),
        ("kosmos-2", 0.03, 0.03),
        ("phi3-vision", 0.20, 0.08),
        ("VILA-Yi-34B", 0.29, 0.09),
        ("LLaMA-3.2-90B", 0.31, 0.09),
        ("GPT4o", 0.44, 0.20),
    ]
}

/// The paper's GPT-4o per-category reference `(standard, challenge)` in
/// `Category::ALL` order.
pub fn paper_gpt4o_categories() -> [(f64, f64); 5] {
    [
        (0.49, 0.17),
        (0.51, 0.09),
        (0.30, 0.15),
        (0.20, 0.30),
        (0.61, 0.48),
    ]
}

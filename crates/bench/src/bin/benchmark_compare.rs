//! Regenerates the Fig. 3 cross-benchmark comparison: ChipVQA versus
//! general engineering VQA suites on knowledge depth, reasoning demand
//! and chip-design coverage.

use chipvqa_core::compare::{chipvqa_dominates, comparison, ComparisonTable};
use chipvqa_core::ChipVqa;

fn main() {
    let bench = ChipVqa::standard();
    println!("Fig. 3 style cross-benchmark comparison (reproduced)\n");
    println!("{}", ComparisonTable(comparison(&bench)));
    println!(
        "ChipVQA dominates prior benchmarks on knowledge depth and chip coverage: {}",
        chipvqa_dominates(&bench)
    );
    println!("\nsample question (ChipVQA column of Fig. 3):");
    let ret = bench
        .iter()
        .find(|q| q.prompt.contains("resolution enhancement"))
        .expect("RET question present");
    println!("  [{}] {}", ret.id, ret.prompt);
}

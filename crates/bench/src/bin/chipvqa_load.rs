//! Load generator for the resident evaluation service.
//!
//! Per concurrency level (default 1, 8, 64, 100) the generator starts a
//! fresh in-process [`EvalService`], unleashes that many client threads
//! — each submitting a single-model session, retrying with a bounded
//! backoff when admission sheds, then waiting for a terminal state —
//! and verifies the serving contract end to end:
//!
//! - **no hangs**: `submit` always returns immediately (an id or a
//!   structured shed); clients give up after a bounded retry budget
//!   instead of spinning forever.
//! - **well-formed sheds**: every rejection round-trips through its
//!   JSON encoding (`{"shed": ...}` stays machine-readable under
//!   saturation).
//! - **no lost or stuck sessions**: every *accepted* session reaches a
//!   terminal state within the wait budget.
//! - **byte-identical results**: every completed session's canonical
//!   report equals the batch-mode reference
//!   ([`batch_reference_report`]) byte for byte — concurrency and the
//!   shared cache plane add speed, never content.
//!
//! Each level emits one p50/p95/p99 [`LatencySummary`] JSON line;
//! `--out FILE` writes them to the committed `BENCH_service.json`.
//! `--store-smoke DIR` appends a cold/warm store-backed session pair —
//! the persistent-store perf trajectory riding in the same artifact.
//!
//! Exit codes: 0 ok · 1 contract violation (mismatch, lost session,
//! malformed shed) or i/o failure · 2 usage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chipvqa_bench::batch_reference_report;
use chipvqa_core::DatasetSpec;
use chipvqa_eval::harness::EvalOptions;
use chipvqa_models::ModelZoo;
use chipvqa_serve::{
    EvalService, LatencySummary, ServiceConfig, SessionRequest, SessionState, ShedReason,
};

/// One level's aggregated client outcomes.
struct LevelOutcome {
    latencies_ns: Vec<u64>,
    sheds: u64,
    give_ups: u64,
}

fn main() {
    let mut levels: Vec<usize> = vec![1, 8, 64, 100];
    let mut config = ServiceConfig::default();
    let mut tenants = 4usize;
    let mut max_attempts = 5_000u64;
    let mut out: Option<std::path::PathBuf> = None;
    let mut store_smoke: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{what} takes a value"))
        };
        match arg.as_str() {
            "--levels" => {
                levels = take("--levels")
                    .split(',')
                    .map(|v| {
                        v.trim()
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n >= 1)
                            .expect("--levels takes positive integers, comma-separated")
                    })
                    .collect();
            }
            "--workers" => config.workers = parse_pos(&take("--workers"), "--workers"),
            "--runners" => config.runners = parse_pos(&take("--runners"), "--runners"),
            "--queue" => {
                config.admission.queue_capacity = parse_pos(&take("--queue"), "--queue");
            }
            "--quota" => {
                config.admission.tenant_running_quota = parse_pos(&take("--quota"), "--quota");
            }
            "--in-flight" => {
                config.admission.tenant_in_flight_limit =
                    parse_pos(&take("--in-flight"), "--in-flight");
            }
            "--shard-batch" => {
                config.shard_batch = parse_pos(&take("--shard-batch"), "--shard-batch");
            }
            "--step-delay-ms" => {
                config.step_delay = Duration::from_millis(
                    take("--step-delay-ms")
                        .parse()
                        .expect("--step-delay-ms takes milliseconds"),
                );
            }
            "--tenants" => tenants = parse_pos(&take("--tenants"), "--tenants"),
            "--max-attempts" => {
                max_attempts = take("--max-attempts")
                    .parse()
                    .ok()
                    .filter(|&n: &u64| n >= 1)
                    .expect("--max-attempts takes a positive integer");
            }
            "--out" => out = Some(take("--out").into()),
            "--store-smoke" => store_smoke = Some(take("--store-smoke").into()),
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: chipvqa-load [--levels 1,8,64,100] \
                     [--workers W] [--runners R] [--queue N] [--quota N] [--in-flight N] \
                     [--shard-batch N] [--step-delay-ms MS] [--tenants N] [--max-attempts N] \
                     [--out FILE] [--store-smoke DIR])"
                );
                std::process::exit(2);
            }
        }
    }

    // The contract's reference: a session's report must byte-equal the
    // plain batch harness run of the same request.
    let model = ModelZoo::gpt4o();
    let spec = DatasetSpec::default();
    let reference =
        batch_reference_report(std::slice::from_ref(&model), &spec, EvalOptions::default())
            .canonical_json();

    let mut lines: Vec<String> = Vec::new();
    for &level in &levels {
        let outcome = run_level(
            level,
            &config,
            tenants,
            max_attempts,
            &model,
            &spec,
            &reference,
        );
        let summary = LatencySummary::from_ns(
            format!("service/sessions_{level}"),
            outcome.latencies_ns.clone(),
        );
        println!(
            "level {level:>4}: {} completed, {} sheds ({} gave up) · \
             p50 {:.1}ms p95 {:.1}ms p99 {:.1}ms",
            summary.samples,
            outcome.sheds,
            outcome.give_ups,
            summary.p50_ns as f64 / 1e6,
            summary.p95_ns as f64 / 1e6,
            summary.p99_ns as f64 / 1e6,
        );
        lines.push(summary.to_json_line());
    }

    if let Some(dir) = &store_smoke {
        for line in run_store_smoke(dir, &config, &model, &spec, &reference) {
            lines.push(line);
        }
    }

    if let Some(path) = &out {
        let mut body = lines.join("\n");
        body.push('\n');
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!(
            "latency report: {} lines -> {}",
            lines.len(),
            path.display()
        );
    } else {
        for line in &lines {
            println!("{line}");
        }
    }
}

fn parse_pos(v: &str, flag: &str) -> usize {
    v.parse()
        .ok()
        .filter(|&n: &usize| n >= 1)
        .unwrap_or_else(|| panic!("{flag} takes a positive integer"))
}

/// Fails the run loudly: the load generator is a contract checker, so a
/// violation is an error exit, not a footnote.
fn violation(msg: &str) -> ! {
    eprintln!("CONTRACT VIOLATION: {msg}");
    std::process::exit(1);
}

/// Runs `level` concurrent clients against a fresh service.
#[allow(clippy::too_many_arguments)]
fn run_level(
    level: usize,
    config: &ServiceConfig,
    tenants: usize,
    max_attempts: u64,
    model: &chipvqa_models::ModelProfile,
    spec: &DatasetSpec,
    reference: &str,
) -> LevelOutcome {
    let service = Arc::new(EvalService::start(config.clone()).unwrap_or_else(|e| {
        eprintln!("failed to start service: {e}");
        std::process::exit(1);
    }));
    let sheds = Arc::new(AtomicU64::new(0));
    let give_ups = Arc::new(AtomicU64::new(0));

    let handles: Vec<std::thread::JoinHandle<Option<u64>>> = (0..level)
        .map(|client| {
            let service = Arc::clone(&service);
            let sheds = Arc::clone(&sheds);
            let give_ups = Arc::clone(&give_ups);
            let model = model.clone();
            let spec = spec.clone();
            let reference = reference.to_string();
            std::thread::spawn(move || {
                let request = SessionRequest {
                    tenant: format!("tenant-{}", client % tenants),
                    models: vec![model],
                    spec,
                    options: EvalOptions::default(),
                    fault_plan: None,
                    stream_shard_len: None,
                };
                // Submit with bounded retry: a shed is backpressure,
                // not failure — but it must be structured, and the
                // retry budget guarantees the client never hangs.
                let mut id = None;
                for _ in 0..max_attempts {
                    match service.submit(request.clone()) {
                        Ok(sid) => {
                            id = Some(sid);
                            break;
                        }
                        Err(reason) => {
                            sheds.fetch_add(1, Ordering::Relaxed);
                            assert_shed_well_formed(&reason);
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                }
                let Some(id) = id else {
                    give_ups.fetch_add(1, Ordering::Relaxed);
                    return None;
                };
                // An accepted session must terminate: a wait timeout
                // here is a stuck session, which is a hard failure.
                match service.wait(id, Duration::from_secs(300)) {
                    Ok(SessionState::Done) => {}
                    Ok(state) => violation(&format!(
                        "accepted session {id} ended {state} instead of done"
                    )),
                    Err(e) => violation(&format!("accepted session lost or stuck: {e}")),
                }
                let report = service
                    .report(id)
                    .unwrap_or_else(|e| violation(&format!("done session has no report: {e}")));
                if report.canonical_json() != reference {
                    violation(&format!(
                        "session {id} report differs from the batch-mode reference"
                    ));
                }
                let snap = service.snapshot(id).expect("session exists");
                Some(snap.total_ns.expect("terminal session has total_ns"))
            })
        })
        .collect();

    let latencies_ns: Vec<u64> = handles
        .into_iter()
        .filter_map(|h| h.join().expect("client thread panicked"))
        .collect();
    if latencies_ns.is_empty() {
        violation(&format!("level {level}: no session completed"));
    }

    let stats = service.stats();
    let terminal = stats.completed + stats.cancelled + stats.failed;
    if terminal != stats.submitted {
        violation(&format!(
            "lost sessions: {} submitted but only {terminal} terminal",
            stats.submitted
        ));
    }
    if stats.failed != 0 {
        violation(&format!("{} sessions failed", stats.failed));
    }
    LevelOutcome {
        latencies_ns,
        sheds: sheds.load(Ordering::Relaxed),
        give_ups: give_ups.load(Ordering::Relaxed),
    }
}

/// A shed must round-trip through JSON and stringify — the "well-formed
/// structured rejection" half of the acceptance criteria.
fn assert_shed_well_formed(reason: &ShedReason) {
    let json = serde_json::to_string(reason)
        .unwrap_or_else(|e| violation(&format!("shed reason failed to serialize: {e}")));
    let back: ShedReason = serde_json::from_str(&json)
        .unwrap_or_else(|e| violation(&format!("shed reason json does not parse back: {e}")));
    if &back != reason || reason.label().is_empty() || reason.to_string().is_empty() {
        violation("shed reason is not structurally stable");
    }
}

/// Cold/warm store-backed single sessions: the persistent answer plane
/// measured through the serving path (satellite of the perf
/// trajectory). Returns two `BENCH_service.json` lines.
fn run_store_smoke(
    dir: &std::path::Path,
    config: &ServiceConfig,
    model: &chipvqa_models::ModelProfile,
    spec: &DatasetSpec,
    reference: &str,
) -> Vec<String> {
    let _ = std::fs::remove_dir_all(dir);
    let mut lines = Vec::new();
    for label in ["service/store_cold", "service/store_warm"] {
        let mut cfg = config.clone();
        cfg.store_dir = Some(dir.to_path_buf());
        let mut service = EvalService::start(cfg).unwrap_or_else(|e| {
            eprintln!("failed to start store-backed service: {e}");
            std::process::exit(1);
        });
        let request = SessionRequest {
            tenant: "store-smoke".to_string(),
            models: vec![model.clone()],
            spec: spec.clone(),
            options: EvalOptions::default(),
            fault_plan: None,
            stream_shard_len: None,
        };
        let id = service
            .submit(request)
            .unwrap_or_else(|r| violation(&format!("store smoke shed: {r}")));
        match service.wait(id, Duration::from_secs(300)) {
            Ok(SessionState::Done) => {}
            other => violation(&format!("store smoke session ended {other:?}")),
        }
        let report = service.report(id).expect("done session has report");
        if report.canonical_json() != reference {
            violation("store-backed session differs from the batch-mode reference");
        }
        let total_ns = service
            .snapshot(id)
            .expect("session exists")
            .total_ns
            .expect("terminal session has total_ns");
        lines.push(LatencySummary::from_ns(label, vec![total_ns]).to_json_line());
        // graceful stop between the pair: the warm run must replay the
        // flushed store from a fresh service, not reuse a live cache
        service.shutdown().unwrap_or_else(|e| {
            eprintln!("store flush failed: {e}");
            std::process::exit(1);
        });
        drop(service);
    }
    lines
}

//! Extension study (the paper's future work, §V): ChipVQA-oriented
//! fine-tuning of an open-source model. Adapts LLaVA-7b on freshly
//! generated ChipVQA instances and measures held-out pass rates against
//! the data budget, plus the extended collection's difficulty.

use chipvqa_core::ChipVqa;
use chipvqa_eval::harness::{evaluate, EvalOptions};
use chipvqa_models::finetune::{finetune, FinetuneConfig};
use chipvqa_models::{ModelZoo, VlmPipeline};

fn main() {
    let eval_std = ChipVqa::standard();
    let eval_chal = eval_std.challenge();
    let train = ChipVqa::extended_with_seed(20_250_701);
    let all: Vec<&chipvqa_core::Question> = train.iter().collect();

    println!("ChipVQA fine-tuning study (future-work direction of §V)");
    println!("base model: LLaVA-7b; train: extended collection @ seed 20250701 (held out)\n");
    println!("{:>8} {:>12} {:>12}", "examples", "standard", "challenge");
    for n in [0usize, 20, 60, 100, 160] {
        let n = n.min(all.len());
        let (model, _) = finetune(&ModelZoo::llava_7b(), &all[..n], FinetuneConfig::default());
        let pipe = VlmPipeline::new(model);
        let s = evaluate(&pipe, &eval_std, EvalOptions::default()).overall();
        let c = evaluate(&pipe, &eval_chal, EvalOptions::default()).overall();
        println!("{n:>8} {s:>12.2} {c:>12.2}");
    }

    // gap to GPT-4o before/after a full fine-tune
    let gpt = evaluate(
        &VlmPipeline::new(ModelZoo::gpt4o()),
        &eval_std,
        EvalOptions::default(),
    )
    .overall();
    let base = evaluate(
        &VlmPipeline::new(ModelZoo::llava_7b()),
        &eval_std,
        EvalOptions::default(),
    )
    .overall();
    let (ft, report) = finetune(&ModelZoo::llava_7b(), &all, FinetuneConfig::default());
    let ft_rate = evaluate(&VlmPipeline::new(ft), &eval_std, EvalOptions::default()).overall();
    println!("\nGPT-4o {gpt:.2} | LLaVA-7b {base:.2} -> fine-tuned {ft_rate:.2}");
    println!("gap to GPT-4o: {:.2} -> {:.2}", gpt - base, gpt - ft_rate);
    println!("\nknowledge axes before -> after (Digital..Physical):");
    for i in 0..5 {
        println!(
            "  {:.2} -> {:.2}",
            report.knowledge_before[i], report.knowledge_after[i]
        );
    }

    // the extended collection itself
    let ext = ChipVqa::extended();
    let ext_rate = evaluate(
        &VlmPipeline::new(ModelZoo::gpt4o()),
        &ext,
        EvalOptions::default(),
    )
    .overall();
    println!(
        "\nextended collection ({} questions incl. OOO/floorplan/buffering): GPT-4o pass@1 {ext_rate:.2}",
        ext.len()
    );
}

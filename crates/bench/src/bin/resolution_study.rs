//! Regenerates the §IV-B resolution study: GPT-4o on the Digital
//! category at native, 8x and 16x downsampled image resolution.

use chipvqa_core::question::Category;
use chipvqa_core::ChipVqa;
use chipvqa_eval::resolution::resolution_sweep;
use chipvqa_models::{ModelZoo, VlmPipeline};

fn main() {
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let pts = resolution_sweep(&pipe, &bench, Category::Digital, &[1, 2, 4, 8, 16, 32]);
    println!("Resolution study (GPT-4o, Digital category)  [paper: 49% -> ~49% @8x -> 37% @16x]");
    println!("{:>8} {:>10}", "factor", "pass rate");
    for p in &pts {
        println!("{:>7}x {:>9.2}", p.factor, p.pass_rate);
    }
    let native = pts[0].pass_rate;
    let at8 = pts.iter().find(|p| p.factor == 8).map(|p| p.pass_rate);
    let at16 = pts.iter().find(|p| p.factor == 16).map(|p| p.pass_rate);
    if let (Some(a8), Some(a16)) = (at8, at16) {
        println!(
            "\nshape check: 8x {} native ({native:.2} vs {a8:.2}); 16x drops to {a16:.2}",
            if (native - a8).abs() <= 0.1 {
                "preserves"
            } else {
                "deviates from"
            }
        );
    }
}

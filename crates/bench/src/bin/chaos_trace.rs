//! Instrumented chaos run: a supervised evaluation under a seeded fault
//! storm with full telemetry attached, emitting a deterministic JSONL
//! trace for the CI artifact.
//!
//! The run uses one worker and a [`MockClock`], so the trace is a pure
//! function of the seed: the same `CHIPVQA_CHAOS_SEED` always produces a
//! byte-identical file. Any degraded Table II rows are re-emitted as
//! structured `run.degraded` events, so the trace carries the same
//! information as the human-readable footer.
//!
//! Usage: `chaos_trace [output.jsonl]` (default `chaos_trace.jsonl`);
//! `CHIPVQA_CHAOS_SEED` selects the storm (default 20260806).

use std::path::PathBuf;
use std::sync::Arc;

use chipvqa_core::ChipVqa;
use chipvqa_eval::fault::install_quiet_panic_hook;
use chipvqa_eval::harness::EvalOptions;
use chipvqa_eval::report::{ModelRow, Table2};
use chipvqa_eval::{FaultPlan, ParallelExecutor, Supervisor};
use chipvqa_models::{ModelZoo, VlmPipeline};
use chipvqa_telemetry::{JsonlSink, MockClock, Telemetry};

fn chaos_seed() -> u64 {
    std::env::var("CHIPVQA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_806)
}

fn main() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "chaos_trace.jsonl".to_string())
        .into();

    let sink = Arc::new(JsonlSink::new());
    let tele = Telemetry::builder()
        .clock(MockClock::new(1))
        .sink(Arc::clone(&sink))
        .build();
    // One worker: span and event order is then a pure function of the
    // seed, so the artifact is byte-stable across CI runs.
    let exec = ParallelExecutor::new(1)
        .with_supervisor(Supervisor::new(FaultPlan::uniform(seed, 0.03)))
        .with_telemetry(tele.clone());

    let standard = ChipVqa::standard();
    let challenge = standard.challenge();
    let mut rows = Vec::new();
    for profile in [
        ModelZoo::gpt4o(),
        ModelZoo::llava_34b(),
        ModelZoo::fuyu_8b(),
    ] {
        let pipe = VlmPipeline::new(profile);
        let name = pipe.profile().name.clone();
        let std_report = exec.evaluate(&pipe, &standard, EvalOptions::default());
        let chal_report = exec.evaluate(&pipe, &challenge, EvalOptions::default());
        println!(
            "{name}: standard {:.3} ({} answered), challenge {:.3} ({} answered)",
            std_report.overall(),
            std_report.answered(),
            chal_report.overall(),
            chal_report.answered(),
        );
        rows.push(ModelRow {
            standard: std_report,
            challenge: chal_report,
        });
    }

    let table = Table2 { rows };
    let degraded = table.emit_degraded_events(&tele);
    println!("\nseed {seed}: {degraded} degraded row(s) re-emitted as run.degraded events");

    sink.write_to(&out).expect("trace written");
    println!("wrote {} trace records to {}", sink.len(), out.display());
    println!("\n{}", tele.summary());
}

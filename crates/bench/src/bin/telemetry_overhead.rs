//! CI gate: the disabled-telemetry executor must stay within 5% of the
//! baseline executor (plus an absolute slack floor so machine noise on
//! sub-millisecond runs cannot flake the gate).
//!
//! Methodology: interleave baseline and no-op runs A/B/A/B… so drift
//! (thermal, scheduler) hits both arms equally, take the median of each
//! arm, and compare. The gate retries once before failing, then exits
//! non-zero so CI marks the regression.
//!
//! Also prints a recording-mode summary table, so the artifact shows
//! what enabled telemetry collects on the same workload.

use std::sync::Arc;
use std::time::Instant;

use chipvqa_core::ChipVqa;
use chipvqa_eval::harness::EvalOptions;
use chipvqa_eval::ParallelExecutor;
use chipvqa_models::{ModelZoo, VlmPipeline};
use chipvqa_telemetry::{MemorySink, Telemetry};

const ROUNDS: usize = 9;
const MAX_RELATIVE_OVERHEAD: f64 = 0.05;
/// Absolute slack: differences below this are machine noise regardless
/// of the relative threshold.
const ABSOLUTE_SLACK_MS: f64 = 2.0;
const ATTEMPTS: usize = 2;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn time_ms(exec: &ParallelExecutor, pipe: &VlmPipeline, bench: &ChipVqa) -> f64 {
    let start = Instant::now();
    let report = exec.evaluate(pipe, bench, EvalOptions::default());
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.outcomes.len(), bench.len());
    elapsed
}

fn measure(pipe: &VlmPipeline, bench: &ChipVqa) -> (f64, f64) {
    let baseline = ParallelExecutor::new(4);
    let noop = ParallelExecutor::new(4).with_telemetry(Telemetry::disabled());
    // warm-up: fault the code paths and caches for both arms
    time_ms(&baseline, pipe, bench);
    time_ms(&noop, pipe, bench);
    let mut base_ms = Vec::with_capacity(ROUNDS);
    let mut noop_ms = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        base_ms.push(time_ms(&baseline, pipe, bench));
        noop_ms.push(time_ms(&noop, pipe, bench));
    }
    (median(&mut base_ms), median(&mut noop_ms))
}

fn main() {
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());

    let mut passed = false;
    for attempt in 1..=ATTEMPTS {
        let (base, noop) = measure(&pipe, &bench);
        let overhead = (noop - base) / base;
        println!(
            "attempt {attempt}: baseline {base:.3} ms, no-op telemetry {noop:.3} ms, \
             overhead {:+.2}%",
            overhead * 100.0
        );
        if noop - base <= ABSOLUTE_SLACK_MS || overhead <= MAX_RELATIVE_OVERHEAD {
            passed = true;
            break;
        }
        println!("  over budget; retrying to rule out noise");
    }

    // show what an enabled handle records on the same workload
    let sink = Arc::new(MemorySink::new());
    let tele = Telemetry::builder().sink(sink.clone()).build();
    let recording = ParallelExecutor::new(4).with_telemetry(tele.clone());
    recording.evaluate(&pipe, &bench, EvalOptions::default());
    println!(
        "\nrecording mode on the same workload ({} trace records):",
        sink.len()
    );
    println!("{}", tele.summary());

    if !passed {
        eprintln!(
            "FAIL: no-op telemetry exceeded {}% overhead (+{} ms slack) on every attempt",
            MAX_RELATIVE_OVERHEAD * 100.0,
            ABSOLUTE_SLACK_MS
        );
        std::process::exit(1);
    }
    println!("PASS: no-op telemetry within budget");
}

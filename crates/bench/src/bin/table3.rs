//! Regenerates Table III: agent system vs plain GPT-4o, with and without
//! answer choices.

use chipvqa_agent::AgentSystem;
use chipvqa_core::question::Category;
use chipvqa_core::ChipVqa;
use chipvqa_eval::harness::{evaluate, EvalOptions};
use chipvqa_eval::{Judge, RuleJudge};
use chipvqa_models::{ModelZoo, VlmPipeline};

fn agent_report(agent: &AgentSystem, bench: &ChipVqa) -> (f64, Vec<(Category, f64)>) {
    let judge = RuleJudge::new();
    let mut per_cat: Vec<(Category, f64)> = Vec::new();
    let mut total_pass = 0usize;
    for cat in Category::ALL {
        let qs: Vec<_> = bench.category(cat).collect();
        let pass = qs
            .iter()
            .filter(|q| judge.is_correct(q, &agent.answer(q, 0).text))
            .count();
        total_pass += pass;
        per_cat.push((cat, pass as f64 / qs.len().max(1) as f64));
    }
    (total_pass as f64 / bench.len() as f64, per_cat)
}

fn main() {
    let bench = ChipVqa::standard();
    let challenge = bench.challenge();
    let gpt = VlmPipeline::new(ModelZoo::gpt4o());
    let agent = AgentSystem::paper_setup();

    println!("TABLE III  Evaluation of Agent System on ChipVQA (reproduced)");
    println!(
        "{:<14} {:<8} {:>8}   (paper)",
        "Collection", "Model", "Pass@1"
    );
    for (label, collection, paper_gpt, paper_agent) in [
        ("With Choice", &bench, 0.44, 0.49),
        ("No Choice", &challenge, 0.20, 0.21),
    ] {
        let base = evaluate(&gpt, collection, EvalOptions::default()).overall();
        let (agent_all, per_cat) = agent_report(&agent, collection);
        println!("{label:<14} {:<8} {base:>8.2}   ({paper_gpt:.2})", "GPT4o");
        println!(
            "{label:<14} {:<8} {agent_all:>8.2}   ({paper_agent:.2})",
            "Agent"
        );
        // the paper notes a regression specifically on Manufacture
        if label == "No Choice" {
            let base_manuf = evaluate(&gpt, collection, EvalOptions::default())
                .category_rate(Category::Manufacture);
            let agent_manuf = per_cat
                .iter()
                .find(|(c, _)| *c == Category::Manufacture)
                .map(|&(_, r)| r)
                .unwrap_or(0.0);
            println!(
                "  manufacture detail: GPT4o {base_manuf:.2} vs Agent {agent_manuf:.2} \
                 (paper observes an agent regression here)"
            );
        }
    }
}

//! Regenerates Table I (dataset statistics) and, with `--fig1`, the
//! Fig. 1 composition view (disciplines x visual kinds x difficulty).

use chipvqa_core::compare::depth_by_category;
use chipvqa_core::question::Category;
use chipvqa_core::stats::DatasetStats;
use chipvqa_core::ChipVqa;

fn main() {
    let bench = ChipVqa::standard();
    let stats = DatasetStats::compute(&bench);
    println!("{stats}");

    if std::env::args().any(|a| a == "--fig1") {
        println!("\nFig. 1 composition view");
        println!("  knowledge disciplines: 5 (expert-curated equivalents)");
        for (cat, depth) in depth_by_category(&bench) {
            let n = bench.category(cat).count();
            let mc = bench
                .category(cat)
                .filter(|q| q.is_multiple_choice())
                .count();
            println!(
                "    {:<14} {:>3} questions ({} MC / {} SA), mean knowledge depth {:.2}",
                cat.label(),
                n,
                mc,
                n - mc,
                depth
            );
        }
        let kinds: std::collections::BTreeSet<_> = bench.iter().map(|q| q.visual_kind).collect();
        println!("  diverse visual contents: {} kinds", kinds.len());
        let max_steps = bench
            .iter()
            .map(|q| q.difficulty.reasoning_steps)
            .max()
            .unwrap_or(0);
        println!(
            "  comprehensive difficulties: reasoning depth 1..{} steps, \
             knowledge depth {:.2}..{:.2}",
            max_steps,
            bench
                .iter()
                .map(|q| q.difficulty.knowledge_depth)
                .fold(f64::INFINITY, f64::min),
            bench
                .iter()
                .map(|q| q.difficulty.knowledge_depth)
                .fold(0.0, f64::max),
        );
        let _ = Category::ALL;
    }
}

//! Regenerates Table II: zero-shot pass@1 of all twelve models on the
//! standard (with-choice) and challenge (no-choice) collections.
//!
//! `--scale N` runs the same grid on an N×-scaled [`DatasetSpec`]
//! collection, streamed shard-by-shard through the parallel executor
//! (`--workers W`, default 4). The paper-reference comparison applies
//! only at scale 1, where the collection is the paper's.

use chipvqa_bench::{paper_reference, run_table2, run_table2_scaled};
use chipvqa_core::{ChipVqa, DatasetSpec};

fn main() {
    let mut scale = 1usize;
    let mut workers = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--scale takes a positive integer");
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--workers takes a positive integer");
            }
            other => {
                eprintln!("unknown argument `{other}` (usage: table2 [--scale N] [--workers W])");
                std::process::exit(2);
            }
        }
    }

    if scale > 1 {
        let spec = DatasetSpec::scaled(scale);
        println!(
            "scaled run: {} questions per column ({}x), {} workers, streamed\n",
            spec.total(),
            scale,
            workers
        );
        let table = run_table2_scaled(scale, workers);
        println!("{table}");
        return;
    }

    let bench = ChipVqa::standard();
    let table = run_table2(&bench);
    println!("{table}");
    println!("paper reference (all-column):");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "Model", "repro w/", "paper w/", "repro w/o", "paper w/o"
    );
    for (name, std_ref, chal_ref) in paper_reference() {
        if let Some(row) = table.model(name) {
            println!(
                "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                name,
                row.standard.overall(),
                std_ref,
                row.challenge.overall(),
                chal_ref
            );
        }
    }
    let gpt = table.model("GPT4o").expect("zoo includes GPT4o");
    println!(
        "\nGPT-4o lead over open-source mean: {:.2} (paper: ~0.20)",
        gpt.standard.overall() - table.open_source_mean("GPT4o")
    );
}

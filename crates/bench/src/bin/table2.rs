//! Regenerates Table II: zero-shot pass@1 of all twelve models on the
//! standard (with-choice) and challenge (no-choice) collections.

use chipvqa_bench::{paper_reference, run_table2};
use chipvqa_core::ChipVqa;

fn main() {
    let bench = ChipVqa::standard();
    let table = run_table2(&bench);
    println!("{table}");
    println!("paper reference (all-column):");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "Model", "repro w/", "paper w/", "repro w/o", "paper w/o"
    );
    for (name, std_ref, chal_ref) in paper_reference() {
        if let Some(row) = table.model(name) {
            println!(
                "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                name,
                row.standard.overall(),
                std_ref,
                row.challenge.overall(),
                chal_ref
            );
        }
    }
    let gpt = table.model("GPT4o").expect("zoo includes GPT4o");
    println!(
        "\nGPT-4o lead over open-source mean: {:.2} (paper: ~0.20)",
        gpt.standard.overall() - table.open_source_mean("GPT4o")
    );
}

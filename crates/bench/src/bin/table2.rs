//! Regenerates Table II: zero-shot pass@1 of all twelve models on the
//! standard (with-choice) and challenge (no-choice) collections.
//!
//! `--scale N` runs the same grid on an N×-scaled [`DatasetSpec`]
//! collection, streamed shard-by-shard through the parallel executor
//! (`--workers W`, default 4). The paper-reference comparison applies
//! only at scale 1, where the collection is the paper's.
//!
//! `--store DIR` (scaled runs) backs the answer cache with a persistent
//! [`AnswerStore`](chipvqa_eval::AnswerStore) at DIR: the first run
//! populates it, every later run warm-starts from it — byte-identical
//! table, no inference. `--trace FILE` exports the run's telemetry
//! (including `store.*` traffic) as JSON lines to FILE.

use std::sync::Arc;

use chipvqa_bench::{paper_reference, run_table2, run_table2_scaled, run_table2_scaled_with_store};
use chipvqa_core::{ChipVqa, DatasetSpec};
use chipvqa_telemetry::{JsonlSink, Telemetry};

fn main() {
    let mut scale = 1usize;
    let mut workers = 4usize;
    let mut store_dir: Option<std::path::PathBuf> = None;
    let mut trace_file: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--scale takes a positive integer");
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--workers takes a positive integer");
            }
            "--store" => {
                store_dir = Some(args.next().expect("--store takes a directory").into());
            }
            "--trace" => {
                trace_file = Some(args.next().expect("--trace takes a file path").into());
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` \
                     (usage: table2 [--scale N] [--workers W] [--store DIR] [--trace FILE])"
                );
                std::process::exit(2);
            }
        }
    }

    let sink = trace_file.as_ref().map(|_| Arc::new(JsonlSink::new()));
    let telemetry = match &sink {
        Some(sink) => Telemetry::builder().sink(Arc::clone(sink)).build(),
        None => Telemetry::disabled(),
    };

    if scale > 1 {
        let spec = DatasetSpec::scaled(scale);
        println!(
            "scaled run: {} questions per column ({}x), {} workers, streamed\n",
            spec.total(),
            scale,
            workers
        );
        let table = match &store_dir {
            Some(dir) => {
                let started = std::time::Instant::now();
                let (table, stats) =
                    run_table2_scaled_with_store(scale, workers, dir, telemetry.clone())
                        .unwrap_or_else(|e| {
                            eprintln!("answer store at {} failed: {e}", dir.display());
                            std::process::exit(1);
                        });
                println!(
                    "store: {} · wall {:.3}s · warm hit-rate {:.3} ({} disk hits / {} lookups) \
                     · lifetime {} hits / {} misses",
                    dir.display(),
                    started.elapsed().as_secs_f64(),
                    stats.warm_hit_rate(),
                    stats.store_hits,
                    stats.hits + stats.misses,
                    stats.lifetime_hits,
                    stats.lifetime_misses,
                );
                table
            }
            None => run_table2_scaled(scale, workers),
        };
        println!("{table}");
        write_trace(trace_file, sink);
        return;
    }

    let bench = ChipVqa::standard();
    let table = run_table2(&bench);
    println!("{table}");
    println!("paper reference (all-column):");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "Model", "repro w/", "paper w/", "repro w/o", "paper w/o"
    );
    for (name, std_ref, chal_ref) in paper_reference() {
        if let Some(row) = table.model(name) {
            println!(
                "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                name,
                row.standard.overall(),
                std_ref,
                row.challenge.overall(),
                chal_ref
            );
        }
    }
    let gpt = table.model("GPT4o").expect("zoo includes GPT4o");
    println!(
        "\nGPT-4o lead over open-source mean: {:.2} (paper: ~0.20)",
        gpt.standard.overall() - table.open_source_mean("GPT4o")
    );
    write_trace(trace_file, sink);
}

/// Writes the captured telemetry trace (if any was requested) to disk.
fn write_trace(path: Option<std::path::PathBuf>, sink: Option<Arc<JsonlSink>>) {
    if let (Some(path), Some(sink)) = (path, sink) {
        if let Err(e) = std::fs::write(&path, sink.to_jsonl()) {
            eprintln!("failed to write trace {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("trace: {} lines -> {}", sink.lines().len(), path.display());
    }
}

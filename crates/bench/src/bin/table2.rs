//! Regenerates Table II: zero-shot pass@1 of all twelve models on the
//! standard (with-choice) and challenge (no-choice) collections.
//!
//! `--scale N` runs the same grid on an N×-scaled [`DatasetSpec`]
//! collection, streamed shard-by-shard through the parallel executor
//! (`--workers W`, default 4). The paper-reference comparison applies
//! only at scale 1, where the collection is the paper's.
//!
//! `--store DIR` (scaled runs) backs the answer cache with a persistent
//! [`AnswerStore`](chipvqa_eval::AnswerStore) at DIR: the first run
//! populates it, every later run warm-starts from it — byte-identical
//! table, no inference. `--trace FILE` exports the run's telemetry
//! (including `store.*` traffic) as JSON lines to FILE.
//!
//! `--fleet DIR` joins (or starts) a crash-tolerant multi-process fleet
//! at DIR: any number of `table2 --scale N --fleet DIR` processes share
//! the shard grid through lease files and one shared answer store,
//! stealing the leases of killed workers and healing their quarantined
//! shards. When every shard is committed, `table2 merge --fleet DIR
//! --scale N` folds the records into the canonical table — byte-identical
//! to a single-process run — refusing mismatched spec fingerprints and
//! store generations. `--report-json FILE` writes the table (with the
//! run-metadata `cache_stats` nulled) as JSON for byte comparison.
//!
//! `--chaos RATE` (scaled runs) places the whole grid under a seeded
//! fault supervisor: every fault kind injected at RATE, seed taken from
//! `--chaos-seed` (default: `CHIPVQA_CHAOS_SEED`, then 20260806). Chaos
//! runs stream by default; `--batch` evaluates the same supervised grid
//! over fully materialized benches — the two produce byte-identical
//! `--report-json` files, which is exactly what the `stream-chaos` CI
//! job `cmp`s.
//!
//! Conflicting mode flags are refused up front with a structured
//! JSON error on stderr (`{"error":"flag_conflict",...}`) instead of
//! last-flag-wins or silent ignoring: `--store` with `--fleet` (the
//! fleet manages its own shared store), `--store` at scale 1 (the
//! canonical run takes the uncached path), `--report-json` on a
//! fleet *worker* (only `merge` produces the table; workers would
//! silently drop the flag), `--chaos` with `--fleet` or `--store`
//! (supervised runs are a differential fixture, not a durability mode),
//! and `--batch` without `--chaos` (unsupervised runs already stream).
//!
//! Exit codes: 0 ok · 1 store/trace/report i/o failure · 2 usage ·
//! 3 table printed with a DEGRADED RUN footer · 4 fleet merge refused ·
//! 5 conflicting mode flags.

use std::sync::Arc;

use chipvqa_bench::{
    paper_reference, run_table2, run_table2_fleet_merge, run_table2_fleet_worker,
    run_table2_scaled, run_table2_scaled_supervised, run_table2_scaled_with_store,
};
use chipvqa_core::{ChipVqa, DatasetSpec};
use chipvqa_eval::fleet::FleetConfig;
use chipvqa_eval::report::Table2;
use chipvqa_telemetry::{JsonlSink, Telemetry};

/// Exit code for a run that ends with a DEGRADED RUN footer.
const EXIT_DEGRADED: i32 = 3;
/// Exit code for a refused fleet merge (mismatched identity, incomplete).
const EXIT_MERGE_REFUSED: i32 = 4;
/// Exit code for conflicting mode flags (refused before any work).
const EXIT_FLAG_CONFLICT: i32 = 5;

/// Refuses a run whose flags request contradictory modes: a structured
/// JSON error on stderr, exit code 5, nothing evaluated.
fn flag_conflict(detail: &str) -> ! {
    let body = serde_json::Value::Obj(vec![
        (
            "error".to_string(),
            serde_json::Value::Str("flag_conflict".to_string()),
        ),
        (
            "detail".to_string(),
            serde_json::Value::Str(detail.to_string()),
        ),
    ]);
    eprintln!(
        "{}",
        serde_json::to_string(&body).expect("value serializes")
    );
    std::process::exit(EXIT_FLAG_CONFLICT);
}

fn main() {
    let mut merge_mode = false;
    let mut scale = 1usize;
    let mut workers = 4usize;
    let mut store_dir: Option<std::path::PathBuf> = None;
    let mut fleet_dir: Option<std::path::PathBuf> = None;
    let mut trace_file: Option<std::path::PathBuf> = None;
    let mut report_json: Option<std::path::PathBuf> = None;
    let mut chaos_rate: Option<f64> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut batch_mode = false;
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("merge") {
        merge_mode = true;
        args.next();
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--scale takes a positive integer");
            }
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--workers takes a positive integer");
            }
            "--store" => {
                store_dir = Some(args.next().expect("--store takes a directory").into());
            }
            "--fleet" => {
                fleet_dir = Some(args.next().expect("--fleet takes a directory").into());
            }
            "--trace" => {
                trace_file = Some(args.next().expect("--trace takes a file path").into());
            }
            "--report-json" => {
                report_json = Some(args.next().expect("--report-json takes a file path").into());
            }
            "--chaos" => {
                chaos_rate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|r: &f64| (0.0..=0.16).contains(r))
                        .expect("--chaos takes a per-kind fault rate in [0, 0.16]"),
                );
            }
            "--chaos-seed" => {
                chaos_seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--chaos-seed takes an unsigned integer"),
                );
            }
            "--batch" => {
                batch_mode = true;
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` \
                     (usage: table2 [merge] [--scale N] [--workers W] [--store DIR] \
                     [--fleet DIR] [--trace FILE] [--report-json FILE] \
                     [--chaos RATE] [--chaos-seed S] [--batch])"
                );
                std::process::exit(2);
            }
        }
    }
    if merge_mode && fleet_dir.is_none() {
        eprintln!("table2 merge requires --fleet DIR");
        std::process::exit(2);
    }
    if fleet_dir.is_some() && store_dir.is_some() {
        flag_conflict(
            "--store cannot be combined with --fleet: the fleet manages its own \
             shared answer store inside the fleet directory",
        );
    }
    if store_dir.is_some() && scale == 1 {
        flag_conflict(
            "--store requires --scale N with N > 1: the canonical scale-1 run \
             takes the uncached reference path and would silently ignore the store",
        );
    }
    if fleet_dir.is_some() && !merge_mode && report_json.is_some() {
        flag_conflict(
            "--report-json is a merge-side flag: fleet workers produce no table; \
             run `table2 merge --fleet DIR --report-json FILE` instead",
        );
    }
    if chaos_rate.is_some() && fleet_dir.is_some() {
        flag_conflict(
            "--chaos cannot be combined with --fleet: supervised chaos runs are a \
             single-process differential fixture; fleet durability has its own \
             chaos harness (tests/fleet_chaos.rs)",
        );
    }
    if chaos_rate.is_some() && store_dir.is_some() {
        flag_conflict(
            "--chaos cannot be combined with --store: faulted answers must never \
             be persisted, so supervised runs always take the uncached path",
        );
    }
    if batch_mode && chaos_rate.is_none() {
        flag_conflict(
            "--batch only selects the reference mode for a --chaos run: \
             unsupervised runs already stream; add --chaos RATE",
        );
    }

    let sink = trace_file.as_ref().map(|_| Arc::new(JsonlSink::new()));
    let telemetry = match &sink {
        Some(sink) => Telemetry::builder().sink(Arc::clone(sink)).build(),
        None => Telemetry::disabled(),
    };

    if let Some(dir) = &fleet_dir {
        if merge_mode {
            let table = run_table2_fleet_merge(dir, scale, &telemetry).unwrap_or_else(|e| {
                eprintln!("fleet merge refused: {e}");
                std::process::exit(EXIT_MERGE_REFUSED);
            });
            println!("fleet merge: {} · scale {}\n", dir.display(), scale);
            println!("{table}");
            write_report_json(report_json, &table);
            write_trace(trace_file, sink);
            if table.is_degraded() {
                std::process::exit(EXIT_DEGRADED);
            }
            return;
        }
        let started = std::time::Instant::now();
        let outcome =
            run_table2_fleet_worker(dir, scale, workers, &FleetConfig::default(), telemetry)
                .unwrap_or_else(|e| {
                    eprintln!("fleet worker failed: {e}");
                    std::process::exit(1);
                });
        println!(
            "fleet worker pid {} done in {:.3}s: {} shards evaluated ({} healed), \
             {} quarantined, {} leases stolen ({} lost), {} duplicate commits",
            std::process::id(),
            started.elapsed().as_secs_f64(),
            outcome.shards_evaluated,
            outcome.shards_healed,
            outcome.shards_quarantined,
            outcome.leases_stolen,
            outcome.steals_lost,
            outcome.duplicate_commits,
        );
        println!(
            "merge with: table2 merge --fleet {} --scale {}",
            dir.display(),
            scale
        );
        write_trace(trace_file, sink);
        return;
    }

    if let Some(rate) = chaos_rate {
        let seed = chaos_seed
            .or_else(|| {
                std::env::var("CHIPVQA_CHAOS_SEED")
                    .ok()
                    .and_then(|v| v.parse().ok())
            })
            .unwrap_or(20_260_806);
        let spec = DatasetSpec::scaled(scale);
        println!(
            "chaos run: {} questions per column ({}x), {} workers, \
             seed {seed}, per-kind rate {rate}, {}\n",
            spec.total(),
            scale,
            workers,
            if batch_mode {
                "batch (reference)"
            } else {
                "streamed"
            },
        );
        let plan = chipvqa_eval::FaultPlan::uniform(seed, rate);
        let table = run_table2_scaled_supervised(scale, workers, plan, !batch_mode, telemetry);
        println!("{table}");
        write_report_json(report_json, &table);
        write_trace(trace_file, sink);
        if table.is_degraded() {
            std::process::exit(EXIT_DEGRADED);
        }
        return;
    }

    if scale > 1 {
        let spec = DatasetSpec::scaled(scale);
        println!(
            "scaled run: {} questions per column ({}x), {} workers, streamed\n",
            spec.total(),
            scale,
            workers
        );
        let table = match &store_dir {
            Some(dir) => {
                let started = std::time::Instant::now();
                let (table, stats) =
                    run_table2_scaled_with_store(scale, workers, dir, telemetry.clone())
                        .unwrap_or_else(|e| {
                            eprintln!("answer store at {} failed: {e}", dir.display());
                            std::process::exit(1);
                        });
                println!(
                    "store: {} · wall {:.3}s · warm hit-rate {:.3} ({} disk hits / {} lookups) \
                     · lifetime {} hits / {} misses",
                    dir.display(),
                    started.elapsed().as_secs_f64(),
                    stats.warm_hit_rate(),
                    stats.store_hits,
                    stats.hits + stats.misses,
                    stats.lifetime_hits,
                    stats.lifetime_misses,
                );
                table
            }
            None => run_table2_scaled(scale, workers),
        };
        println!("{table}");
        write_report_json(report_json, &table);
        write_trace(trace_file, sink);
        if table.is_degraded() {
            std::process::exit(EXIT_DEGRADED);
        }
        return;
    }

    let bench = ChipVqa::standard();
    let table = run_table2(&bench);
    println!("{table}");
    println!("paper reference (all-column):");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10}",
        "Model", "repro w/", "paper w/", "repro w/o", "paper w/o"
    );
    for (name, std_ref, chal_ref) in paper_reference() {
        if let Some(row) = table.model(name) {
            println!(
                "{:<16} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                name,
                row.standard.overall(),
                std_ref,
                row.challenge.overall(),
                chal_ref
            );
        }
    }
    let gpt = table.model("GPT4o").expect("zoo includes GPT4o");
    println!(
        "\nGPT-4o lead over open-source mean: {:.2} (paper: ~0.20)",
        gpt.standard.overall() - table.open_source_mean("GPT4o")
    );
    write_report_json(report_json, &table);
    write_trace(trace_file, sink);
    if table.is_degraded() {
        std::process::exit(EXIT_DEGRADED);
    }
}

/// Writes the table as JSON with the run-metadata `cache_stats` nulled,
/// so two runs with identical results (one warm, one cold; one fleet,
/// one single-process) produce byte-identical files.
fn write_report_json(path: Option<std::path::PathBuf>, table: &Table2) {
    let Some(path) = path else { return };
    let mut canonical = table.clone();
    for row in &mut canonical.rows {
        row.standard.cache_stats = None;
        row.challenge.cache_stats = None;
    }
    let json = serde_json::to_string(&canonical).expect("table serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("failed to write report {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("report: {}", path.display());
}

/// Writes the captured telemetry trace (if any was requested) to disk.
fn write_trace(path: Option<std::path::PathBuf>, sink: Option<Arc<JsonlSink>>) {
    if let (Some(path), Some(sink)) = (path, sink) {
        if let Err(e) = std::fs::write(&path, sink.to_jsonl()) {
            eprintln!("failed to write trace {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("trace: {} lines -> {}", sink.lines().len(), path.display());
    }
}

//! Resident evaluation server: one [`EvalService`] driven by JSON
//! commands on stdin, one JSON response per line on stdout.
//!
//! ```text
//! serve [--workers W] [--runners R] [--queue N] [--quota N]
//!       [--shard-batch N] [--step-delay-ms MS] [--store DIR] [--events]
//! ```
//!
//! Commands (one JSON object per line):
//!
//! | command | fields | effect |
//! |---|---|---|
//! | `submit` | `tenant`, `models` (names), `scale?`, `no_choice?` | queue a session |
//! | `cancel` | `session` | cancel (batch-boundary for running) |
//! | `resume` | `session` | re-queue a cancelled session |
//! | `wait` | `session`, `timeout_ms?` | block until terminal |
//! | `status` | `session` | snapshot |
//! | `report` | `session` | canonical report JSON of a done session |
//! | `stats` | — | service counters |
//! | `shutdown` | — | graceful stop, then exit |
//!
//! Responses are `{"ok": ...}` or `{"err": ...}`; admission sheds are
//! `{"shed": <structured reason>}` — distinct from errors because a
//! shed is the service working as designed. With `--events`, progress
//! events stream to stderr as JSON lines. EOF on stdin is a graceful
//! shutdown.

use std::io::BufRead;
use std::sync::Arc;
use std::time::Duration;

use chipvqa_core::DatasetSpec;
use chipvqa_eval::harness::EvalOptions;
use chipvqa_models::ModelZoo;
use chipvqa_serve::{EvalService, ServiceConfig, SessionId, SessionRequest};
use serde_json::Value;

fn main() {
    let mut config = ServiceConfig::default();
    let mut events = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{what} takes a value"))
        };
        match arg.as_str() {
            "--workers" => config.workers = parse_pos(&take("--workers"), "--workers"),
            "--runners" => config.runners = parse_pos(&take("--runners"), "--runners"),
            "--queue" => {
                config.admission.queue_capacity = parse_pos(&take("--queue"), "--queue");
            }
            "--quota" => {
                config.admission.tenant_running_quota = parse_pos(&take("--quota"), "--quota");
            }
            "--shard-batch" => {
                config.shard_batch = parse_pos(&take("--shard-batch"), "--shard-batch");
            }
            "--step-delay-ms" => {
                config.step_delay = Duration::from_millis(
                    take("--step-delay-ms")
                        .parse()
                        .expect("--step-delay-ms takes milliseconds"),
                );
            }
            "--store" => config.store_dir = Some(take("--store").into()),
            "--events" => events = true,
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: serve [--workers W] [--runners R] \
                     [--queue N] [--quota N] [--shard-batch N] [--step-delay-ms MS] \
                     [--store DIR] [--events])"
                );
                std::process::exit(2);
            }
        }
    }

    let mut service = EvalService::start(config).unwrap_or_else(|e| {
        eprintln!("failed to start service: {e}");
        std::process::exit(1);
    });
    let zoo = Arc::new(ModelZoo::all());

    let event_pump = events.then(|| {
        let rx = service.subscribe();
        std::thread::spawn(move || {
            while let Ok(event) = rx.recv() {
                eprintln!(
                    "{}",
                    serde_json::to_string(&event).expect("event serializes")
                );
            }
        })
    });

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Value>(&line) {
            Ok(cmd) => handle(&service, &zoo, &cmd),
            Err(e) => err(format!("bad command json: {e}")),
        };
        println!("{}", serde_json::to_string(&response).expect("serializes"));
        if matches!(response.get("ok"), Some(Value::Str(s)) if s == "shutdown") {
            break;
        }
    }

    if let Err(e) = service.shutdown() {
        eprintln!("store flush on shutdown failed: {e}");
        std::process::exit(1);
    }
    drop(service);
    if let Some(pump) = event_pump {
        let _ = pump.join();
    }
}

fn parse_pos(v: &str, flag: &str) -> usize {
    v.parse()
        .ok()
        .filter(|&n: &usize| n >= 1)
        .unwrap_or_else(|| panic!("{flag} takes a positive integer"))
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn ok(v: Value) -> Value {
    obj(vec![("ok", v)])
}

fn err(msg: impl std::fmt::Display) -> Value {
    obj(vec![("err", Value::Str(msg.to_string()))])
}

fn session_arg(cmd: &Value) -> Result<SessionId, Value> {
    match cmd.get("session") {
        Some(Value::U64(n)) => Ok(SessionId(*n)),
        Some(Value::I64(n)) if *n >= 0 => Ok(SessionId(*n as u64)),
        _ => Err(err("command needs a numeric `session` field")),
    }
}

fn handle(service: &EvalService, zoo: &[chipvqa_models::ModelProfile], cmd: &Value) -> Value {
    let Some(Value::Str(name)) = cmd.get("cmd") else {
        return err("command object needs a string `cmd` field");
    };
    match name.as_str() {
        "submit" => {
            let tenant = match cmd.get("tenant") {
                Some(Value::Str(t)) => t.clone(),
                None => String::new(),
                Some(other) => {
                    return err(format!("`tenant` must be a string, got {}", other.kind()))
                }
            };
            let models = match cmd.get("models").and_then(Value::as_arr) {
                Some(names) => {
                    let mut models = Vec::with_capacity(names.len());
                    for n in names {
                        let Value::Str(n) = n else {
                            return err("`models` must be an array of model names");
                        };
                        match zoo.iter().find(|p| &p.name == n) {
                            Some(p) => models.push(p.clone()),
                            None => return err(format!("unknown model `{n}`")),
                        }
                    }
                    models
                }
                None => return err("submit needs a `models` array of zoo model names"),
            };
            let scale = match cmd.get("scale") {
                Some(Value::U64(n)) if *n >= 1 => *n as usize,
                Some(Value::I64(n)) if *n >= 1 => *n as usize,
                None => 1,
                Some(_) => return err("`scale` must be a positive integer"),
            };
            let mut spec = DatasetSpec::scaled(scale);
            if matches!(cmd.get("no_choice"), Some(Value::Bool(true))) {
                spec = spec.with_mc_sa_ratio(0.0);
            }
            let request = SessionRequest {
                tenant,
                models,
                spec,
                options: EvalOptions::default(),
                fault_plan: None,
                stream_shard_len: None,
            };
            match service.submit(request) {
                Ok(id) => ok(obj(vec![("session", Value::U64(id.0))])),
                Err(reason) => obj(vec![("shed", serde_json::to_value(&reason))]),
            }
        }
        "cancel" => match session_arg(cmd) {
            Ok(id) => match service.cancel(id) {
                Ok(()) => ok(Value::Str("cancelling".to_string())),
                Err(e) => err(e),
            },
            Err(resp) => resp,
        },
        "resume" => match session_arg(cmd) {
            Ok(id) => match service.resume(id) {
                Ok(()) => ok(Value::Str("queued".to_string())),
                Err(e) => err(e),
            },
            Err(resp) => resp,
        },
        "wait" => match session_arg(cmd) {
            Ok(id) => {
                let timeout_ms = match cmd.get("timeout_ms") {
                    Some(Value::U64(n)) => *n,
                    Some(Value::I64(n)) if *n >= 0 => *n as u64,
                    None => 600_000,
                    Some(_) => return err("`timeout_ms` must be a non-negative integer"),
                };
                match service.wait(id, Duration::from_millis(timeout_ms)) {
                    Ok(state) => ok(Value::Str(state.label().to_string())),
                    Err(e) => err(e),
                }
            }
            Err(resp) => resp,
        },
        "status" => match session_arg(cmd) {
            Ok(id) => match service.snapshot(id) {
                Ok(snap) => ok(serde_json::to_value(&snap)),
                Err(e) => err(e),
            },
            Err(resp) => resp,
        },
        "report" => match session_arg(cmd) {
            Ok(id) => match service.report(id) {
                Ok(report) => ok(serde_json::to_value(&report)),
                Err(e) => err(e),
            },
            Err(resp) => resp,
        },
        "stats" => ok(serde_json::to_value(&service.stats())),
        "shutdown" => ok(Value::Str("shutdown".to_string())),
        other => err(format!("unknown command `{other}`")),
    }
}

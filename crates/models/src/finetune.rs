//! Domain-adaptation fine-tuning — the paper's stated future work
//! ("ChipVQA-oriented dataset collection, VLM training and development,
//! targeting a low-cost yet effective open-source foundation model").
//!
//! The simulator's training analogue: exposure to chip-design QA data
//! raises the per-category knowledge axes with diminishing returns
//! (saturating-exponential learning curves, the standard shape of
//! data-scaling studies), plus a small instruction-tuning bump. Training
//! and evaluation must use *different dataset seeds* — the benchmark
//! regenerates with fresh parameters per seed, so a model can be adapted
//! on one instance and measured on a held-out one, exactly like a real
//! fine-tune.

use chipvqa_core::question::Question;
use serde::{Deserialize, Serialize};

use crate::profile::ModelProfile;

/// Fine-tuning hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinetuneConfig {
    /// Passes over the training set.
    pub epochs: u32,
    /// Per-example learning strength (how fast knowledge saturates).
    pub learning_rate: f64,
    /// Ceiling the knowledge axes saturate towards.
    pub knowledge_ceiling: f64,
    /// Instruction-tuning bump applied once (QA-format exposure).
    pub instruction_bump: f64,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            epochs: 3,
            learning_rate: 0.02,
            knowledge_ceiling: 0.9,
            instruction_bump: 0.05,
        }
    }
}

/// Summary of a fine-tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinetuneReport {
    /// Training examples seen per category (`Category::ALL` order).
    pub examples: [usize; 5],
    /// Knowledge before, per category.
    pub knowledge_before: [f64; 5],
    /// Knowledge after, per category.
    pub knowledge_after: [f64; 5],
}

/// Fine-tunes a model profile on a set of training questions, returning
/// the adapted profile and a report.
///
/// Knowledge in category `c` moves from `k` towards the ceiling as
/// `k' = ceil − (ceil − k)·exp(−lr · epochs · n_c)` — saturating, so the
/// hundredth example teaches less than the first (the data-efficiency
/// story a "low-cost" open model depends on).
pub fn finetune(
    profile: &ModelProfile,
    train: &[&Question],
    cfg: FinetuneConfig,
) -> (ModelProfile, FinetuneReport) {
    use chipvqa_core::question::Category;
    let mut counts = [0usize; 5];
    for q in train {
        let idx = Category::ALL
            .iter()
            .position(|&c| c == q.category)
            .expect("category in ALL");
        counts[idx] += 1;
    }
    let before = profile.knowledge;
    let mut adapted = profile.clone();
    for (i, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue; // no exposure, no change (and no float round-trip)
        }
        let k = adapted.knowledge[i];
        let ceiling = cfg.knowledge_ceiling.max(k);
        let exposure = cfg.learning_rate * f64::from(cfg.epochs) * n as f64;
        adapted.knowledge[i] = ceiling - (ceiling - k) * (-exposure).exp();
    }
    if !train.is_empty() {
        adapted.instruction_following =
            (adapted.instruction_following + cfg.instruction_bump).min(0.99);
        // Renaming reseeds the per-question RNG streams; an empty
        // training set must be a strict no-op, so only adapted models
        // get the suffix.
        adapted.name = format!("{} (chipvqa-ft)", profile.name);
    }
    adapted.validate();
    let report = FinetuneReport {
        examples: counts,
        knowledge_before: before,
        knowledge_after: adapted.knowledge,
    };
    (adapted, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelZoo;
    use chipvqa_core::question::Category;
    use chipvqa_core::ChipVqa;

    fn train_set(bench: &ChipVqa) -> Vec<&chipvqa_core::Question> {
        bench.iter().collect()
    }

    #[test]
    fn knowledge_rises_everywhere_trained() {
        let bench = ChipVqa::with_seed(777);
        let base = ModelZoo::llava_7b();
        let (ft, report) = finetune(&base, &train_set(&bench), FinetuneConfig::default());
        for i in 0..5 {
            assert!(
                report.knowledge_after[i] > report.knowledge_before[i],
                "category {i}"
            );
            assert!(ft.knowledge[i] <= 0.9 + 1e-12);
        }
        assert!(ft.instruction_following > base.instruction_following);
        assert!(ft.name.contains("chipvqa-ft"));
    }

    #[test]
    fn untouched_category_unchanged() {
        let bench = ChipVqa::with_seed(3);
        let digital_only: Vec<&chipvqa_core::Question> =
            bench.category(Category::Digital).collect();
        let base = ModelZoo::llava_7b();
        let (_, report) = finetune(&base, &digital_only, FinetuneConfig::default());
        assert!(report.knowledge_after[0] > report.knowledge_before[0]);
        for i in 1..5 {
            assert_eq!(report.knowledge_after[i], report.knowledge_before[i]);
        }
    }

    #[test]
    fn diminishing_returns() {
        let bench = ChipVqa::with_seed(9);
        let all: Vec<&chipvqa_core::Question> = bench.iter().collect();
        let base = ModelZoo::llava_7b();
        let (_, small) = finetune(&base, &all[..20], FinetuneConfig::default());
        let (_, big) = finetune(&base, &all, FinetuneConfig::default());
        let gain_small: f64 = small
            .knowledge_after
            .iter()
            .zip(&small.knowledge_before)
            .map(|(a, b)| a - b)
            .sum();
        let gain_big: f64 = big
            .knowledge_after
            .iter()
            .zip(&big.knowledge_before)
            .map(|(a, b)| a - b)
            .sum();
        assert!(gain_big > gain_small);
        // but not 7x bigger for 7x the data (saturation)
        assert!(gain_big < gain_small * 7.0);
    }
}

//! The twelve simulated models of Table II.
//!
//! Capability axes are *calibration parameters of the simulator*, chosen
//! so that running the full benchmark reproduces the shape of the paper's
//! Table II (model ordering, MC-vs-SA gap, category contrasts, the ~20%
//! GPT-4o lead). They are not measurements of the real systems.
//! Knowledge vectors are in `Category::ALL` order:
//! `[Digital, Analog, Architecture, Manufacture, Physical]`.

use crate::profile::ModelProfile;

/// Factory for the paper's model roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelZoo;

// one positional argument per ModelProfile field, in declaration order —
// a builder here would just re-spell the struct
#[allow(clippy::too_many_arguments)]
fn profile(
    name: &str,
    params_b: f64,
    encoder_resolution: usize,
    visual_acuity: f64,
    knowledge: [f64; 5],
    reasoning: f64,
    instruction_following: f64,
    mc_elimination: f64,
    supports_system_prompt: bool,
) -> ModelProfile {
    let p = ModelProfile {
        name: name.to_string(),
        params_b,
        encoder_resolution,
        visual_acuity,
        knowledge,
        reasoning,
        instruction_following,
        mc_elimination,
        supports_system_prompt,
    };
    p.validate();
    p
}

impl ModelZoo {
    /// LLaVA-1.6 7B (Mistral-7b backbone).
    pub fn llava_7b() -> ModelProfile {
        profile(
            "LLaVA-7b",
            7.0,
            336,
            0.62,
            [0.16, 0.12, 0.30, 0.10, 0.32],
            0.40,
            0.84,
            0.88,
            true,
        )
    }

    /// LLaVA-1.6 13B (Vicuna-13b backbone).
    pub fn llava_13b() -> ModelProfile {
        profile(
            "LLaVA-13b",
            13.0,
            336,
            0.62,
            [0.12, 0.12, 0.34, 0.20, 0.16],
            0.44,
            0.82,
            0.72,
            true,
        )
    }

    /// LLaVA-1.6 34B (Yi-34b backbone).
    pub fn llava_34b() -> ModelProfile {
        profile(
            "LLaVA-34b",
            34.0,
            672,
            0.64,
            [0.16, 0.22, 0.26, 0.22, 0.30],
            0.52,
            0.86,
            0.60,
            true,
        )
    }

    /// LLaVA-NeXT with the LLaMA-3-8b backbone.
    pub fn llava_llama3() -> ModelProfile {
        profile(
            "LLaVA-LLaMa-3",
            8.0,
            672,
            0.64,
            [0.18, 0.12, 0.34, 0.14, 0.28],
            0.52,
            0.87,
            0.72,
            true,
        )
    }

    /// NVIDIA NeVA 22B.
    pub fn neva_22b() -> ModelProfile {
        profile(
            "NeVA-22b",
            22.0,
            448,
            0.63,
            [0.16, 0.20, 0.28, 0.28, 0.18],
            0.50,
            0.84,
            0.62,
            true,
        )
    }

    /// Adept Fuyu-8B.
    pub fn fuyu_8b() -> ModelProfile {
        profile(
            "fuyu-8b",
            8.0,
            1080,
            0.55,
            [0.10, 0.22, 0.14, 0.12, 0.22],
            0.38,
            0.64,
            0.55,
            false,
        )
    }

    /// Google PaliGemma (3B, 224px).
    pub fn paligemma() -> ModelProfile {
        profile(
            "paligemma",
            3.0,
            224,
            0.45,
            [0.08, 0.08, 0.16, 0.16, 0.10],
            0.30,
            0.36,
            0.25,
            false,
        )
    }

    /// Microsoft Kosmos-2.
    pub fn kosmos_2() -> ModelProfile {
        profile(
            "kosmos-2",
            1.6,
            224,
            0.40,
            [0.08, 0.06, 0.10, 0.12, 0.12],
            0.26,
            0.22,
            0.05,
            false,
        )
    }

    /// Deprecated spelling of [`ModelZoo::kosmos_2`]; kept so older
    /// call sites keep compiling, but it is the same profile (same
    /// fingerprint), not a thirteenth model.
    #[deprecated(since = "0.1.0", note = "use `ModelZoo::kosmos_2` instead")]
    pub fn kosmos2() -> ModelProfile {
        Self::kosmos_2()
    }

    /// Microsoft Phi-3-Vision.
    pub fn phi3_vision() -> ModelProfile {
        profile(
            "phi3-vision",
            4.2,
            1344,
            0.65,
            [0.20, 0.14, 0.14, 0.22, 0.34],
            0.50,
            0.82,
            0.48,
            true,
        )
    }

    /// NVIDIA VILA with the Yi-34B backbone.
    pub fn vila_yi_34b() -> ModelProfile {
        profile(
            "VILA-Yi-34B",
            34.0,
            448,
            0.65,
            [0.24, 0.26, 0.40, 0.04, 0.30],
            0.58,
            0.89,
            0.80,
            true,
        )
    }

    /// Meta LLaMA-3.2 90B Vision.
    pub fn llama_3_2_90b() -> ModelProfile {
        profile(
            "LLaMA-3.2-90B",
            90.0,
            1120,
            0.75,
            [0.20, 0.18, 0.18, 0.55, 0.58],
            0.66,
            0.91,
            0.68,
            true,
        )
    }

    /// OpenAI GPT-4o.
    pub fn gpt4o() -> ModelProfile {
        profile(
            "GPT4o",
            1800.0,
            1024,
            0.92,
            [0.20, 0.28, 0.32, 0.60, 0.82],
            0.85,
            0.97,
            0.95,
            true,
        )
    }

    /// GPT-4-Turbo as a *text-only* planner (the agent study's chip
    /// designer): stronger knowledge/reasoning than GPT-4o's grounded
    /// answering, but no visual access of its own (acuity 0 — it must use
    /// the vision tool).
    pub fn gpt4_turbo_text() -> ModelProfile {
        profile(
            "GPT4-Turbo (text)",
            1760.0,
            1024,
            0.0,
            [0.26, 0.32, 0.38, 0.48, 0.84],
            0.87,
            0.98,
            0.97,
            true,
        )
    }

    /// All twelve Table-II models in the paper's row order.
    pub fn all() -> Vec<ModelProfile> {
        vec![
            Self::llava_7b(),
            Self::llava_13b(),
            Self::llava_34b(),
            Self::llava_llama3(),
            Self::neva_22b(),
            Self::fuyu_8b(),
            Self::paligemma(),
            Self::kosmos_2(),
            Self::phi3_vision(),
            Self::vila_yi_34b(),
            Self::llama_3_2_90b(),
            Self::gpt4o(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_models_in_paper_order() {
        let all = ModelZoo::all();
        assert_eq!(all.len(), 12);
        assert_eq!(all[0].name, "LLaVA-7b");
        assert_eq!(all[11].name, "GPT4o");
        for p in &all {
            p.validate();
        }
    }

    #[test]
    fn zoo_has_no_duplicate_profiles() {
        // Every zoo entry is a distinct model: names and behavioural
        // fingerprints must both be unique across `all()`.
        let all = ModelZoo::all();
        let mut names: Vec<&str> = all.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate model name in zoo");
        let mut prints: Vec<u64> = all
            .iter()
            .map(|p| crate::VlmPipeline::new(p.clone()).fingerprint())
            .collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), all.len(), "duplicate fingerprint in zoo");
    }

    #[test]
    #[allow(deprecated)]
    fn kosmos2_alias_is_the_same_model() {
        assert_eq!(ModelZoo::kosmos2(), ModelZoo::kosmos_2());
        assert_eq!(
            crate::VlmPipeline::new(ModelZoo::kosmos2()).fingerprint(),
            crate::VlmPipeline::new(ModelZoo::kosmos_2()).fingerprint()
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = ModelZoo::all().into_iter().map(|p| p.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn gpt4o_dominates_open_source_capabilities() {
        let gpt = ModelZoo::gpt4o();
        for p in ModelZoo::all().into_iter().take(11) {
            assert!(gpt.reasoning >= p.reasoning, "{}", p.name);
            assert!(gpt.visual_acuity >= p.visual_acuity, "{}", p.name);
        }
    }

    #[test]
    fn planner_is_text_only() {
        let planner = ModelZoo::gpt4_turbo_text();
        assert_eq!(planner.visual_acuity, 0.0);
        assert!(planner.reasoning > ModelZoo::gpt4o().reasoning);
    }

    #[test]
    fn llava_backbone_scaling_monotone_in_reasoning() {
        // Mistral-7b <= Vicuna-13b <= Yi-34b ~= LLaMA-3-8b (§IV-A)
        let r7 = ModelZoo::llava_7b().reasoning;
        let r13 = ModelZoo::llava_13b().reasoning;
        let r34 = ModelZoo::llava_34b().reasoning;
        assert!(r7 <= r13 && r13 <= r34);
    }
}

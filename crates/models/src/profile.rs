//! Per-model capability profiles.

use serde::{Deserialize, Serialize};

use chipvqa_core::question::Category;

/// The capability profile of a (simulated) visual-language model.
///
/// All capability axes live in `[0, 1]`. They parameterise *mechanisms*
/// (perception, recall, multi-step derivation, format adherence), not
/// outcomes; accuracies emerge from running the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Display name as used in the paper's tables.
    pub name: String,
    /// Parameter count in billions (reporting only).
    pub params_b: f64,
    /// Square input resolution of the vision encoder, in pixels.
    pub encoder_resolution: usize,
    /// Quality of visual feature extraction at full legibility.
    pub visual_acuity: f64,
    /// Domain knowledge per category, `Category::ALL` order.
    pub knowledge: [f64; 5],
    /// Per-derivation-step success probability of the LLM backbone.
    pub reasoning: f64,
    /// Probability of producing a well-formed, instruction-compliant
    /// answer.
    pub instruction_following: f64,
    /// Skill at eliminating implausible options in multiple choice.
    pub mc_elimination: f64,
    /// Whether the deployment supports a separate system prompt
    /// (PaliGemma-style models concatenate it into the user turn, which
    /// costs instruction-following fidelity; §IV).
    pub supports_system_prompt: bool,
}

impl ModelProfile {
    /// Knowledge level for a category.
    pub fn knowledge_for(&self, cat: Category) -> f64 {
        let i = Category::ALL
            .iter()
            .position(|&c| c == cat)
            .expect("category in ALL");
        self.knowledge[i]
    }

    /// Effective instruction-following after accounting for system-prompt
    /// support (concatenated system prompts lose a little adherence).
    pub fn effective_instruction_following(&self) -> f64 {
        if self.supports_system_prompt {
            self.instruction_following
        } else {
            self.instruction_following * 0.85
        }
    }

    /// Mean knowledge across categories (reporting only).
    pub fn mean_knowledge(&self) -> f64 {
        self.knowledge.iter().sum::<f64>() / self.knowledge.len() as f64
    }

    /// Stable fingerprint over every behaviour-affecting field.
    ///
    /// Two profiles share a fingerprint iff they would answer every
    /// question identically, so the fingerprint is a sound cache /
    /// checkpoint identity for a model. Floats are hashed by exact bit
    /// pattern — any calibration change invalidates the fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        eat(self.name.as_bytes());
        eat(&self.params_b.to_bits().to_le_bytes());
        eat(&(self.encoder_resolution as u64).to_le_bytes());
        eat(&self.visual_acuity.to_bits().to_le_bytes());
        for k in self.knowledge {
            eat(&k.to_bits().to_le_bytes());
        }
        eat(&self.reasoning.to_bits().to_le_bytes());
        eat(&self.instruction_following.to_bits().to_le_bytes());
        eat(&self.mc_elimination.to_bits().to_le_bytes());
        eat(&[u8::from(self.supports_system_prompt)]);
        h
    }

    /// Validates that every axis is inside its domain.
    ///
    /// # Panics
    ///
    /// Panics when any capability leaves `[0, 1]` or the resolution is
    /// zero — profiles are static data, so a bad profile is a programmer
    /// error.
    pub fn validate(&self) {
        assert!(
            self.encoder_resolution > 0,
            "{}: zero resolution",
            self.name
        );
        for (axis, v) in [
            ("visual_acuity", self.visual_acuity),
            ("reasoning", self.reasoning),
            ("instruction_following", self.instruction_following),
            ("mc_elimination", self.mc_elimination),
        ] {
            assert!((0.0..=1.0).contains(&v), "{}: {axis} = {v}", self.name);
        }
        for (i, &k) in self.knowledge.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&k),
                "{}: knowledge[{i}] = {k}",
                self.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> ModelProfile {
        ModelProfile {
            name: "test".into(),
            params_b: 7.0,
            encoder_resolution: 336,
            visual_acuity: 0.7,
            knowledge: [0.5, 0.4, 0.3, 0.2, 0.35],
            reasoning: 0.6,
            instruction_following: 0.9,
            mc_elimination: 0.5,
            supports_system_prompt: true,
        }
    }

    #[test]
    fn knowledge_lookup_by_category() {
        let p = profile();
        assert_eq!(p.knowledge_for(Category::Digital), 0.5);
        assert_eq!(p.knowledge_for(Category::Physical), 0.35);
    }

    #[test]
    fn system_prompt_concat_penalty() {
        let mut p = profile();
        assert_eq!(p.effective_instruction_following(), 0.9);
        p.supports_system_prompt = false;
        assert!((p.effective_instruction_following() - 0.765).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "visual_acuity")]
    fn bad_profile_rejected() {
        let mut p = profile();
        p.visual_acuity = 1.5;
        p.validate();
    }

    #[test]
    fn mean_knowledge() {
        assert!((profile().mean_knowledge() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = profile().fingerprint();
        assert_eq!(base, profile().fingerprint(), "fingerprint is stable");

        let mut p = profile();
        p.reasoning += 1e-9;
        assert_ne!(base, p.fingerprint(), "tiny calibration shift detected");

        let mut p = profile();
        p.name.push('2');
        assert_ne!(base, p.fingerprint());

        let mut p = profile();
        p.supports_system_prompt = false;
        assert_ne!(base, p.fingerprint());
    }
}

//! Mechanistic visual-language-model simulator for the ChipVQA
//! reproduction.
//!
//! The paper evaluates twelve real VLMs (LLaVA family, NeVA, Fuyu,
//! PaliGemma, Kosmos-2, Phi-3-Vision, VILA, LLaMA-3.2-90B, GPT-4o) served
//! from GPU clusters. None of that infrastructure exists here, so this
//! crate implements the substitution documented in DESIGN.md: a simulator
//! with the *architecture of Fig. 2* — a visual [`encoder`] that extracts
//! facts from the rendered pixels (perception quality measured from real
//! ink legibility at the encoder's input resolution), a projector, and a
//! language [`backbone`] whose solving behaviour is governed by a
//! per-model capability [`profile`] (per-category knowledge, reasoning
//! depth, instruction following, choice-elimination skill).
//!
//! Pass rates are *emergent*: the simulator never looks up a target
//! accuracy. The MC-vs-SA gap appears because unsolved MC questions still
//! guess among the remaining options; the resolution cliff appears because
//! 16x-downsampled strokes fall below the ink threshold; the agent gains
//! appear because a stronger text backbone reasons over tool-described
//! facts. The twelve [`zoo`] profiles are calibrated so Table II's
//! *shape* reproduces (ordering, gaps, category contrasts).
//!
//! # Example
//!
//! ```
//! use chipvqa_core::ChipVqa;
//! use chipvqa_models::zoo::ModelZoo;
//! use chipvqa_models::pipeline::VlmPipeline;
//!
//! let bench = ChipVqa::standard();
//! let gpt4o = ModelZoo::gpt4o();
//! let pipe = VlmPipeline::new(gpt4o);
//! let q = bench.questions().first().expect("nonempty");
//! let resp = pipe.infer(q, 1, 0);
//! assert!(!resp.text.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backbone;
pub mod encoder;
pub mod finetune;
pub mod pipeline;
pub mod profile;
pub mod prompt;
pub mod zoo;

pub use pipeline::{ModelResponse, VlmPipeline};
pub use profile::ModelProfile;
pub use zoo::ModelZoo;

//! The simulated visual encoder: extracts the question's key visual
//! facts from real pixels, with success tied to each fact's ink
//! legibility at the encoder's effective input resolution.

use std::cell::RefCell;

use chipvqa_core::question::Question;
use chipvqa_raster::{legibility_with_downsampled, Pixmap};
use rand::rngs::StdRng;
use rand::Rng;

use crate::profile::ModelProfile;

thread_local! {
    // Per-thread scratch for the downsampled image: perception runs once
    // per (model, question) on the executor's hot path, and reusing one
    // buffer avoids a full-image allocation per call.
    static DOWNSAMPLE_SCRATCH: RefCell<Pixmap> = RefCell::new(Pixmap::new(1, 1));
}

/// What the encoder extracted from the image.
#[derive(Debug, Clone, PartialEq)]
pub struct Percept {
    /// Indices (into `question.visual.marks`) of the facts perceived.
    pub perceived: Vec<usize>,
    /// Total key facts the question required.
    pub required: usize,
    /// Fraction of required facts perceived (1.0 when none required).
    pub coverage: f64,
}

/// Runs perception: for each key mark, measure the legibility of its
/// pixels after the *total* downsampling the encoder implies
/// (`external_factor` from the experiment times the resize the encoder's
/// input resolution forces), then extract the fact with probability
/// `acuity · (0.3 + 0.7 · legibility)`.
pub fn perceive(
    profile: &ModelProfile,
    question: &Question,
    external_factor: usize,
    rng: &mut StdRng,
) -> Percept {
    let image = &question.visual.image;
    let max_dim = image.width().max(image.height()).max(1);
    let enc_factor = max_dim.div_ceil(profile.encoder_resolution).max(1);
    let total = external_factor.max(1) * enc_factor;
    // Every key mark shares the same image and factor, so downsample once
    // per question (into per-thread scratch) instead of once per mark —
    // the single biggest win on the perception path, with bit-identical
    // legibility values and an unchanged RNG call sequence.
    let mut perceived = Vec::new();
    DOWNSAMPLE_SCRATCH.with(|scratch| {
        let mut down = scratch.borrow_mut();
        if total > 1 && !question.key_marks.is_empty() {
            image.downsample_into(total, &mut down);
        }
        for &mark_idx in &question.key_marks {
            let Some(mark) = question.visual.marks.get(mark_idx) else {
                continue;
            };
            let legibility = legibility_with_downsampled(image, &down, mark.region, total);
            // Perception falls off sharply once strokes start dissolving:
            // a small floor for coarse context, then a superlinear ramp.
            let p = (profile.visual_acuity * (0.15 + 0.85 * legibility.powf(2.5))).clamp(0.0, 1.0);
            if rng.gen_bool(p) {
                perceived.push(mark_idx);
            }
        }
    });
    let required = question.key_marks.len();
    let coverage = if required == 0 {
        1.0
    } else {
        perceived.len() as f64 / required as f64
    };
    Percept {
        perceived,
        required,
        coverage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_core::ChipVqa;
    use rand::SeedableRng;

    fn profile(acuity: f64, res: usize) -> ModelProfile {
        ModelProfile {
            name: "enc-test".into(),
            params_b: 1.0,
            encoder_resolution: res,
            visual_acuity: acuity,
            knowledge: [0.5; 5],
            reasoning: 0.5,
            instruction_following: 1.0,
            mc_elimination: 0.5,
            supports_system_prompt: true,
        }
    }

    fn mean_coverage(p: &ModelProfile, factor: usize) -> f64 {
        let bench = ChipVqa::standard();
        let mut total = 0.0;
        let mut n = 0.0;
        for (i, q) in bench.iter().enumerate().take(40) {
            let mut rng = StdRng::seed_from_u64(i as u64);
            total += perceive(p, q, factor, &mut rng).coverage;
            n += 1.0;
        }
        total / n
    }

    #[test]
    fn perfect_acuity_full_res_sees_everything() {
        let p = profile(1.0, 2048);
        let cov = mean_coverage(&p, 1);
        assert!(cov > 0.95, "{cov}");
    }

    #[test]
    fn zero_acuity_sees_nothing() {
        let p = profile(0.0, 2048);
        assert_eq!(mean_coverage(&p, 1), 0.0);
    }

    #[test]
    fn sixteen_x_downsampling_hurts_more_than_eight() {
        let p = profile(0.95, 2048);
        let at1 = mean_coverage(&p, 1);
        let at8 = mean_coverage(&p, 8);
        let at16 = mean_coverage(&p, 16);
        assert!(at8 > at16, "8x {at8} vs 16x {at16}");
        assert!(at1 >= at8 - 0.05, "1x {at1} vs 8x {at8}");
        assert!(at1 - at16 > 0.1, "16x must lose substantial coverage");
    }

    #[test]
    fn low_resolution_encoder_loses_detail_under_external_downsampling() {
        // At native resolution both encoders cope; the low-res encoder
        // collapses first when the input is additionally degraded.
        let hi = profile(0.9, 1024);
        let lo = profile(0.9, 224);
        let hi_cov = mean_coverage(&hi, 4);
        let lo_cov = mean_coverage(&lo, 4);
        assert!(
            lo_cov < hi_cov,
            "low-res encoder {lo_cov} vs high-res {hi_cov}"
        );
    }

    #[test]
    fn coverage_is_one_when_no_key_marks() {
        let p = profile(0.5, 336);
        let bench = ChipVqa::standard();
        let mut q = bench.questions()[0].clone();
        q.key_marks.clear();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(perceive(&p, &q, 1, &mut rng).coverage, 1.0);
    }
}

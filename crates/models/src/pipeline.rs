//! The end-to-end VLM pipeline of Fig. 2: visual encoder → projector →
//! language backbone.

use chipvqa_core::question::Question;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::backbone::{self, AnswerPath};
use crate::encoder::{self, Percept};
use crate::profile::ModelProfile;

/// A model's response to one question.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelResponse {
    /// The answer text.
    pub text: String,
    /// How the answer came about (solved/guessed/failed).
    pub path: AnswerPath,
    /// What the encoder extracted.
    pub percept: Percept,
    /// The rolled solve probability (for ablations).
    pub solve_probability: f64,
}

/// Inference settings (the paper: zero-shot, temperature 0.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Sampling temperature.
    pub temperature: f64,
    /// Extra image downsampling applied before the encoder (the §IV-B
    /// resolution study; 1 = native).
    pub downsample: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            temperature: 0.1,
            downsample: 1,
        }
    }
}

/// The assembled pipeline for one model profile.
#[derive(Debug, Clone, PartialEq)]
pub struct VlmPipeline {
    profile: ModelProfile,
}

impl VlmPipeline {
    /// Builds a pipeline, validating the profile.
    pub fn new(profile: ModelProfile) -> Self {
        profile.validate();
        VlmPipeline { profile }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Behavioural identity of this pipeline — see
    /// [`ModelProfile::fingerprint`]. Cached answers and checkpoints are
    /// keyed on this value.
    pub fn fingerprint(&self) -> u64 {
        self.profile.fingerprint()
    }

    /// Zero-shot inference on one question with the default configuration
    /// (temperature 0.1, native resolution). `attempt` varies the seed
    /// for pass@k evaluation.
    pub fn infer(&self, question: &Question, downsample: usize, attempt: u64) -> ModelResponse {
        self.infer_with(
            question,
            InferenceConfig {
                downsample,
                ..InferenceConfig::default()
            },
            attempt,
        )
    }

    /// Inference with an explicit prompting style. The calibrated zoo
    /// numbers assume [`PromptStyle::zero_shot`]; other styles scale the
    /// model's instruction adherence *relative* to that baseline (a bare
    /// prompt loses the format guidance, an engineered one gains a
    /// little).
    ///
    /// [`PromptStyle::zero_shot`]: crate::prompt::PromptStyle::zero_shot
    pub fn infer_styled(
        &self,
        question: &Question,
        style: &crate::prompt::PromptStyle,
        config: InferenceConfig,
        attempt: u64,
    ) -> ModelResponse {
        let baseline = crate::prompt::PromptStyle::zero_shot().adherence_bonus();
        let scale = style.adherence_bonus() / baseline;
        let mut profile = self.profile.clone();
        profile.instruction_following = (profile.instruction_following * scale).clamp(0.0, 0.99);
        let styled = VlmPipeline { profile };
        // keep the seed stream identical to the unstyled pipeline (same
        // name), so only the adherence mechanism differs
        let mut rng = self.rng_for(question, attempt);
        let percept = encoder::perceive(&styled.profile, question, config.downsample, &mut rng);
        let ans = backbone::answer(
            &styled.profile,
            question,
            &percept,
            config.temperature,
            &mut rng,
        );
        ModelResponse {
            text: ans.text,
            path: ans.path,
            percept,
            solve_probability: ans.solve_probability,
        }
    }

    /// Inference with explicit settings.
    pub fn infer_with(
        &self,
        question: &Question,
        config: InferenceConfig,
        attempt: u64,
    ) -> ModelResponse {
        let mut rng = self.rng_for(question, attempt);
        let percept = encoder::perceive(&self.profile, question, config.downsample, &mut rng);
        // (projector: identity in the simulation — visual tokens join the
        // text tokens directly)
        let ans = backbone::answer(
            &self.profile,
            question,
            &percept,
            config.temperature,
            &mut rng,
        );
        ModelResponse {
            text: ans.text,
            path: ans.path,
            percept,
            solve_probability: ans.solve_probability,
        }
    }

    /// Deterministic per-(model, question, attempt) RNG.
    fn rng_for(&self, question: &Question, attempt: u64) -> StdRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in self
            .profile
            .name
            .bytes()
            .chain(question.id.bytes())
            .chain(attempt.to_le_bytes())
        {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelZoo;
    use chipvqa_core::ChipVqa;

    #[test]
    fn inference_is_deterministic_per_attempt() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let q = &bench.questions()[3];
        let a = pipe.infer(q, 1, 0);
        let b = pipe.infer(q, 1, 0);
        assert_eq!(a, b);
        let c = pipe.infer(q, 1, 1);
        // different attempt may differ (not guaranteed per-question, but
        // the seeds differ)
        let _ = c;
    }

    #[test]
    fn different_models_answer_differently_somewhere() {
        let bench = ChipVqa::standard();
        let strong = VlmPipeline::new(ModelZoo::gpt4o());
        let weak = VlmPipeline::new(ModelZoo::kosmos_2());
        let mut differs = false;
        for q in bench.iter().take(30) {
            if strong.infer(q, 1, 0).text != weak.infer(q, 1, 0).text {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    fn bare_prompt_style_hurts_weak_instruction_followers() {
        use crate::prompt::PromptStyle;
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::fuyu_8b());
        let zero = PromptStyle::zero_shot();
        let bare = PromptStyle::bare();
        let mut zero_ok = 0usize;
        let mut bare_ok = 0usize;
        for q in bench.iter() {
            let cfg = InferenceConfig::default();
            // count well-formed (non-refusal) responses as a proxy
            let z = pipe.infer_styled(q, &zero, cfg, 0);
            let b = pipe.infer_styled(q, &bare, cfg, 0);
            if !z.text.contains("cannot determine") && !z.text.contains("describe the image") {
                zero_ok += 1;
            }
            if !b.text.contains("cannot determine") && !b.text.contains("describe the image") {
                bare_ok += 1;
            }
        }
        assert!(zero_ok >= bare_ok, "{zero_ok} vs {bare_ok}");
    }

    #[test]
    fn styled_inference_with_zero_shot_matches_default() {
        use crate::prompt::PromptStyle;
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let q = &bench.questions()[7];
        let plain = pipe.infer(q, 1, 0);
        let styled = pipe.infer_styled(q, &PromptStyle::zero_shot(), InferenceConfig::default(), 0);
        assert_eq!(plain, styled, "zero-shot style is the calibrated default");
    }

    #[test]
    fn downsampling_lowers_average_solve_probability() {
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::gpt4o());
        let mean_sp = |factor: usize| -> f64 {
            let mut s = 0.0;
            let mut n = 0.0;
            for q in bench.category(chipvqa_core::Category::Digital) {
                s += pipe.infer(q, factor, 0).solve_probability;
                n += 1.0;
            }
            s / n
        };
        let native = mean_sp(1);
        let at16 = mean_sp(16);
        assert!(at16 < native, "16x {at16} vs native {native}");
    }
}

//! The simulated language backbone: turns a percept plus the question
//! prompt into an answer, governed by knowledge/reasoning/instruction
//! capability axes.

use chipvqa_core::question::{trim_float, AnswerSpec, Question, QuestionKind};
use rand::rngs::StdRng;
use rand::Rng;

use crate::encoder::Percept;
use crate::profile::ModelProfile;

/// Internal outcome bookkeeping (exposed for analysis and the agent
/// study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AnswerPath {
    /// Derived the answer (knowledge + reasoning + perception all held).
    Solved,
    /// Guessed among remaining MC options.
    Guessed,
    /// Produced an off-spec or hallucinated response.
    Failed,
}

/// The backbone's answer.
#[derive(Debug, Clone, PartialEq)]
pub struct BackboneAnswer {
    /// Response text as a real model would emit it.
    pub text: String,
    /// Which path produced it.
    pub path: AnswerPath,
    /// The solve probability that was rolled (for ablation reporting).
    pub solve_probability: f64,
}

/// Probability that the backbone actually derives the answer.
///
/// Mechanism: recall of the needed domain knowledge (logistic in the gap
/// between the model's category knowledge and the question's depth),
/// times per-step derivation success, times the fraction of
/// visually-carried information actually perceived, times an arithmetic
/// penalty for weak reasoners on computational questions.
pub fn solve_probability(profile: &ModelProfile, question: &Question, percept: &Percept) -> f64 {
    let k = profile.knowledge_for(question.category);
    let d = question.difficulty.knowledge_depth;
    let p_know = 1.0 / (1.0 + (-6.0 * (k - d)).exp());
    let steps = question.difficulty.reasoning_steps.saturating_sub(1);
    let p_reason = profile.reasoning.powi(steps as i32);
    let vd = question.difficulty.visual_dependence;
    let p_visual = (1.0 - vd) + vd * percept.coverage;
    let p_arith = if question.difficulty.requires_arithmetic {
        0.55 + 0.45 * profile.reasoning
    } else {
        1.0
    };
    (p_know * p_reason * p_visual * p_arith).clamp(0.0, 1.0)
}

/// Produces the final answer text for a question.
///
/// `temperature` perturbs sampling slightly (the paper uses 0.1 to keep
/// outputs near-deterministic).
pub fn answer(
    profile: &ModelProfile,
    question: &Question,
    percept: &Percept,
    temperature: f64,
    rng: &mut StdRng,
) -> BackboneAnswer {
    let p_solve = solve_probability(profile, question, percept);
    let instr = profile.effective_instruction_following();
    // Instruction-following failure: response the judge cannot accept.
    if !rng.gen_bool(instr.clamp(0.0, 1.0)) {
        return BackboneAnswer {
            text: malformed_response(question, rng),
            path: AnswerPath::Failed,
            solve_probability: p_solve,
        };
    }
    let solved = rng.gen_bool(p_solve.clamp(0.0, 1.0));
    // Temperature can knock a solved answer off the argmax.
    let solved = solved && !(temperature > 0.0 && rng.gen_bool((temperature * 0.15).min(1.0)));
    match &question.kind {
        QuestionKind::MultipleChoice { choices, correct } => {
            if solved {
                let letter = (b'a' + *correct as u8) as char;
                BackboneAnswer {
                    text: format!("({letter}) {}", choices[*correct]),
                    path: AnswerPath::Solved,
                    solve_probability: p_solve,
                }
            } else {
                // Eliminate distractors the model can rule out, then
                // guess uniformly among the rest (choices act as
                // retrieval augmentation — §IV-A). Elimination needs both
                // domain knowledge and a readable figure to check the
                // options against, so poor perception erodes it.
                let k = profile.knowledge_for(question.category);
                let vd = question.difficulty.visual_dependence;
                let readable = (1.0 - vd) + vd * percept.coverage;
                let p_eliminate =
                    (profile.mc_elimination * (0.25 + 0.75 * k) * (0.3 + 0.7 * readable))
                        .clamp(0.0, 1.0);
                let mut remaining: Vec<usize> = (0..choices.len())
                    .filter(|&i| i == *correct || !rng.gen_bool(p_eliminate))
                    .collect();
                if remaining.is_empty() {
                    remaining.push(*correct);
                }
                let pick = remaining[rng.gen_range(0..remaining.len())];
                let letter = (b'a' + pick as u8) as char;
                BackboneAnswer {
                    text: format!("({letter}) {}", choices[pick]),
                    path: AnswerPath::Guessed,
                    solve_probability: p_solve,
                }
            }
        }
        QuestionKind::ShortAnswer => {
            if solved {
                BackboneAnswer {
                    text: question.answer.display_text(),
                    path: AnswerPath::Solved,
                    solve_probability: p_solve,
                }
            } else {
                BackboneAnswer {
                    text: hallucinated_answer(question, rng),
                    path: AnswerPath::Failed,
                    solve_probability: p_solve,
                }
            }
        }
    }
}

/// A response that ignores the requested format.
fn malformed_response(question: &Question, rng: &mut StdRng) -> String {
    let templates = [
        "I cannot determine the answer from the provided image.",
        "The figure appears to show a chip design concept; more context is needed.",
        "As an AI model I will describe the image instead of answering.",
    ];
    let t = templates[rng.gen_range(0..templates.len())];
    format!("{t} ({})", question.visual_kind)
}

/// A plausible-but-wrong free-form answer (guaranteed to miss the gold:
/// numeric answers land far outside tolerance, expressions are
/// complemented, text picks a sibling concept).
fn hallucinated_answer(question: &Question, rng: &mut StdRng) -> String {
    match &question.answer {
        AnswerSpec::Numeric { value, unit, .. } => {
            let factor = [2.7, 0.31, 4.2][rng.gen_range(0..3)];
            let wrong = value * factor + value.abs().max(1.0);
            match unit {
                Some(u) => format!("{} {}", trim_float(wrong), u),
                None => trim_float(wrong),
            }
        }
        AnswerSpec::BoolExpr { canonical } => format!("({canonical})'"),
        AnswerSpec::Text { .. } => {
            let generic = [
                "a standard CMOS structure",
                "the setup-time constraint",
                "a differential pair",
                "chemical-mechanical polishing",
                "register renaming",
            ];
            generic[rng.gen_range(0..generic.len())].to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_core::ChipVqa;
    use rand::SeedableRng;

    fn profile(k: f64, reasoning: f64, instr: f64) -> ModelProfile {
        ModelProfile {
            name: "bb-test".into(),
            params_b: 1.0,
            encoder_resolution: 1024,
            visual_acuity: 1.0,
            knowledge: [k; 5],
            reasoning,
            instruction_following: instr,
            mc_elimination: 0.3,
            supports_system_prompt: true,
        }
    }

    fn full_percept(q: &chipvqa_core::Question) -> Percept {
        Percept {
            perceived: q.key_marks.clone(),
            required: q.key_marks.len(),
            coverage: 1.0,
        }
    }

    #[test]
    fn solve_probability_monotone_in_knowledge() {
        let bench = ChipVqa::standard();
        let q = &bench.questions()[0];
        let pc = full_percept(q);
        let lo = solve_probability(&profile(0.2, 0.8, 1.0), q, &pc);
        let hi = solve_probability(&profile(0.9, 0.8, 1.0), q, &pc);
        assert!(hi > lo);
    }

    #[test]
    fn missing_percepts_reduce_solving() {
        let bench = ChipVqa::standard();
        let q = bench
            .iter()
            .find(|q| q.difficulty.visual_dependence > 0.8 && !q.key_marks.is_empty())
            .expect("visual question exists");
        let p = profile(0.8, 0.9, 1.0);
        let full = solve_probability(&p, q, &full_percept(q));
        let blind = solve_probability(
            &p,
            q,
            &Percept {
                perceived: vec![],
                required: q.key_marks.len(),
                coverage: 0.0,
            },
        );
        assert!(blind < full * 0.5, "blind {blind} vs full {full}");
    }

    #[test]
    fn mc_answers_always_lettered_when_instructions_followed() {
        let bench = ChipVqa::standard();
        let p = profile(0.5, 0.7, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for q in bench.iter().filter(|q| q.is_multiple_choice()).take(30) {
            let a = answer(&p, q, &full_percept(q), 0.1, &mut rng);
            assert!(a.text.starts_with('('), "{}", a.text);
        }
    }

    #[test]
    fn guessing_floor_appears_on_mc() {
        // A model that can never solve still gets ~25% of MC right by
        // guessing — the paper's "baseline pass rate of 25%".
        let bench = ChipVqa::standard();
        let p = profile(0.0, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut correct = 0usize;
        let mut total = 0usize;
        for q in bench.iter().filter(|q| q.is_multiple_choice()) {
            let QuestionKind::MultipleChoice { correct: gold, .. } = &q.kind else {
                continue;
            };
            for attempt in 0..5 {
                let _ = attempt;
                let a = answer(&p, q, &full_percept(q), 0.0, &mut rng);
                let letter = (b'a' + *gold as u8) as char;
                if a.text.starts_with(&format!("({letter})")) {
                    correct += 1;
                }
                total += 1;
            }
        }
        let rate = correct as f64 / total as f64;
        assert!((0.15..0.35).contains(&rate), "guess floor {rate}");
    }

    #[test]
    fn zero_instruction_following_always_fails() {
        let bench = ChipVqa::standard();
        let p = profile(1.0, 1.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let q = &bench.questions()[0];
        let a = answer(&p, q, &full_percept(q), 0.1, &mut rng);
        assert_eq!(a.path, AnswerPath::Failed);
    }

    #[test]
    fn hallucinated_numeric_misses_tolerance() {
        let bench = ChipVqa::standard();
        let mut rng = StdRng::seed_from_u64(4);
        for q in bench.iter().filter(|q| !q.is_multiple_choice()).take(20) {
            if let AnswerSpec::Numeric {
                value, tolerance, ..
            } = &q.answer
            {
                let text = hallucinated_answer(q, &mut rng);
                let lead: String = text
                    .split_whitespace()
                    .next()
                    .unwrap_or_default()
                    .to_string();
                if let Ok(x) = lead.parse::<f64>() {
                    let tol = tolerance.max(value.abs() * 0.01);
                    assert!(
                        (x - value).abs() > tol,
                        "{}: hallucination {x} within tolerance of {value}",
                        q.id
                    );
                }
            }
        }
    }
}

//! Prompt construction: the system prompt and formatting instructions
//! the paper engineers per deployment (§IV: "we provide a separate
//! system prompt for question-answering. For VLMs that do not support
//! system prompts, e.g. Paligemma, the original system prompt will be
//! concatenated with the user question prompt").

use chipvqa_core::question::{Question, QuestionKind};
use serde::{Deserialize, Serialize};

use crate::profile::ModelProfile;

/// A prompting style: system prompt plus answer-format instructions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptStyle {
    /// The system prompt establishing the QA role.
    pub system: String,
    /// Instruction appended to multiple-choice prompts.
    pub mc_instruction: String,
    /// Instruction appended to short-answer prompts.
    pub sa_instruction: String,
}

impl PromptStyle {
    /// The zero-shot style the paper's evaluation uses.
    pub fn zero_shot() -> Self {
        PromptStyle {
            system: "You are an expert chip designer. Answer the question about the \
                     provided figure."
                .into(),
            mc_instruction: "Answer with the letter of the correct option, e.g. (b).".into(),
            sa_instruction: "Answer with only the requested value or term.".into(),
        }
    }

    /// A bare style with no formatting guidance (ablation baseline).
    pub fn bare() -> Self {
        PromptStyle {
            system: String::new(),
            mc_instruction: String::new(),
            sa_instruction: String::new(),
        }
    }

    /// Renders the full text a deployment sends for `question` on a model
    /// with the given profile. Models without system-prompt support get
    /// the system text concatenated into the user turn (the PaliGemma
    /// path).
    pub fn render(&self, profile: &ModelProfile, question: &Question) -> RenderedPrompt {
        let instruction = match question.kind {
            QuestionKind::MultipleChoice { .. } => &self.mc_instruction,
            QuestionKind::ShortAnswer => &self.sa_instruction,
        };
        let mut user = question.full_prompt();
        if !instruction.is_empty() {
            user.push('\n');
            user.push_str(instruction);
        }
        if profile.supports_system_prompt {
            RenderedPrompt {
                system: (!self.system.is_empty()).then(|| self.system.clone()),
                user,
            }
        } else {
            let user = if self.system.is_empty() {
                user
            } else {
                format!("{}\n{user}", self.system)
            };
            RenderedPrompt { system: None, user }
        }
    }

    /// Instruction-following multiplier this style earns: explicit format
    /// instructions recover some off-spec answers. The pipeline folds
    /// this into the profile's own adherence.
    pub fn adherence_bonus(&self) -> f64 {
        let mut bonus = 1.0;
        if !self.mc_instruction.is_empty() {
            bonus += 0.03;
        }
        if !self.system.is_empty() {
            bonus += 0.02;
        }
        bonus
    }
}

impl Default for PromptStyle {
    fn default() -> Self {
        PromptStyle::zero_shot()
    }
}

/// The assembled request for one question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RenderedPrompt {
    /// Separate system turn, if the deployment supports one.
    pub system: Option<String>,
    /// The user turn (question, options, instructions — and, for models
    /// without system-prompt support, the inlined system text).
    pub user: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::ModelZoo;
    use chipvqa_core::ChipVqa;

    #[test]
    fn system_prompt_separated_when_supported() {
        let bench = ChipVqa::standard();
        let q = &bench.questions()[0];
        let style = PromptStyle::zero_shot();
        let with = style.render(&ModelZoo::gpt4o(), q);
        assert!(with.system.is_some());
        assert!(!with.user.contains("expert chip designer"));
        assert!(with.user.contains("Answer with the letter"));
    }

    #[test]
    fn paligemma_concatenates_system_into_user() {
        let bench = ChipVqa::standard();
        let q = &bench.questions()[0];
        let style = PromptStyle::zero_shot();
        let rendered = style.render(&ModelZoo::paligemma(), q);
        assert!(rendered.system.is_none());
        assert!(rendered.user.starts_with("You are an expert chip designer"));
    }

    #[test]
    fn sa_questions_get_sa_instruction() {
        let bench = ChipVqa::standard();
        let q = bench
            .iter()
            .find(|q| !q.is_multiple_choice())
            .expect("SA question exists");
        let rendered = PromptStyle::zero_shot().render(&ModelZoo::gpt4o(), q);
        assert!(rendered.user.contains("only the requested value"));
        assert!(!rendered.user.contains("letter of the correct option"));
    }

    #[test]
    fn bare_style_adds_nothing() {
        let bench = ChipVqa::standard();
        let q = &bench.questions()[0];
        let rendered = PromptStyle::bare().render(&ModelZoo::gpt4o(), q);
        assert_eq!(rendered.user, q.full_prompt());
        assert!(rendered.system.is_none());
        assert!(PromptStyle::bare().adherence_bonus() < PromptStyle::zero_shot().adherence_bonus());
    }
}

//! Analog-design substrate for the ChipVQA reproduction.
//!
//! ChipVQA's Analog Design section (44 questions, the largest category)
//! covers DC operating points, small-signal gain, equivalent resistance,
//! feedback analysis, transfer functions, pole/zero/unity-gain
//! frequencies, phase margin and data converters. Generating those
//! questions with machine-checkable golds requires an actual analog
//! solver stack, which this crate provides:
//!
//! - [`complex`] / [`poly`]: complex arithmetic, polynomials and a
//!   Durand–Kerner root finder;
//! - [`mna`]: modified nodal analysis for linear(ised) circuits —
//!   resistors, independent sources and VCCS (transconductance) stamps;
//! - [`tf`]: rational transfer functions with poles, zeros, Bode
//!   evaluation, unity-gain frequency and phase margin;
//! - [`devices`]: MOSFET small-signal parameters and canonical amplifier
//!   stage analyses cross-checked against MNA;
//! - [`feedback`]: loop gain, closed-loop gain and desensitization;
//! - [`adc`]: flash/SAR/pipeline converter facts and quantization
//!   metrics;
//! - [`stages`]: current mirrors, differential pairs and a two-stage
//!   Miller-compensated op-amp macro-model;
//! - [`noise`]: thermal/kT-C/channel noise densities, SNR and noise
//!   budgets;
//! - [`render`]: schematic and Bode-plot drawings for the visual half of
//!   generated questions.
//!
//! # Example
//!
//! ```
//! use chipvqa_analog::mna::Circuit;
//!
//! // A 5V source across a 1k/4k divider: the midpoint sits at 4V.
//! let mut ckt = Circuit::new();
//! let vin = ckt.add_voltage_source(1, 0, 5.0);
//! ckt.add_resistor(1, 2, 1_000.0);
//! ckt.add_resistor(2, 0, 4_000.0);
//! let sol = ckt.solve()?;
//! assert!((sol.voltage(2) - 4.0).abs() < 1e-9);
//! assert!((sol.source_current(vin) - 0.001).abs() < 1e-12);
//! # Ok::<(), chipvqa_analog::mna::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adc;
pub mod complex;
pub mod devices;
pub mod feedback;
pub mod mna;
pub mod noise;
pub mod poly;
pub mod render;
pub mod stages;
pub mod tf;

pub use complex::Complex;
pub use mna::Circuit;
pub use tf::TransferFunction;

//! Rational transfer functions: poles, zeros, Bode evaluation, unity-gain
//! frequency and phase margin.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::complex::Complex;
use crate::poly::Poly;

/// `H(s) = num(s) / den(s)` with real coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction {
    num: Poly,
    den: Poly,
}

/// Error constructing a transfer function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZeroDenominatorError;

impl fmt::Display for ZeroDenominatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transfer function denominator is identically zero")
    }
}

impl std::error::Error for ZeroDenominatorError {}

impl TransferFunction {
    /// Creates `num/den`.
    ///
    /// # Errors
    ///
    /// [`ZeroDenominatorError`] if `den` is the zero polynomial.
    pub fn new(num: Poly, den: Poly) -> Result<Self, ZeroDenominatorError> {
        if den.is_zero() {
            return Err(ZeroDenominatorError);
        }
        Ok(TransferFunction { num, den })
    }

    /// Single-pole low-pass `H(s) = dc / (1 + s/wp)`.
    ///
    /// # Panics
    ///
    /// Panics if `pole_rad` is not positive.
    pub fn single_pole(dc_gain: f64, pole_rad: f64) -> Self {
        assert!(pole_rad > 0.0, "pole frequency must be positive");
        TransferFunction {
            num: Poly::constant(dc_gain),
            den: Poly::new(vec![1.0, 1.0 / pole_rad]),
        }
    }

    /// Builds from gain, left-half-plane pole frequencies and zero
    /// frequencies (all in rad/s, given as positive magnitudes):
    /// `H(s) = k · Π(1 + s/wz) / Π(1 + s/wp)`.
    ///
    /// # Panics
    ///
    /// Panics if any frequency is not positive.
    pub fn from_poles_zeros(dc_gain: f64, poles_rad: &[f64], zeros_rad: &[f64]) -> Self {
        let mut num = Poly::constant(dc_gain);
        for &wz in zeros_rad {
            assert!(wz > 0.0, "zero frequency must be positive");
            num = num.mul(&Poly::new(vec![1.0, 1.0 / wz]));
        }
        let mut den = Poly::constant(1.0);
        for &wp in poles_rad {
            assert!(wp > 0.0, "pole frequency must be positive");
            den = den.mul(&Poly::new(vec![1.0, 1.0 / wp]));
        }
        TransferFunction { num, den }
    }

    /// Numerator polynomial.
    pub fn numerator(&self) -> &Poly {
        &self.num
    }

    /// Denominator polynomial.
    pub fn denominator(&self) -> &Poly {
        &self.den
    }

    /// Evaluates `H(jω)`.
    pub fn eval_jw(&self, omega: f64) -> Complex {
        let s = Complex::new(0.0, omega);
        self.num.eval(s) / self.den.eval(s)
    }

    /// Gain magnitude at ω (linear).
    pub fn magnitude(&self, omega: f64) -> f64 {
        self.eval_jw(omega).abs()
    }

    /// Gain in dB at ω.
    pub fn magnitude_db(&self, omega: f64) -> f64 {
        20.0 * self.magnitude(omega).log10()
    }

    /// Phase at ω in degrees, unwrapped by walking from DC in small
    /// logarithmic steps (so multi-pole phase accumulates beyond ±180°).
    pub fn phase_deg(&self, omega: f64) -> f64 {
        if omega <= 0.0 {
            return self.eval_jw(0.0).arg().to_degrees();
        }
        // Walk from a decade below the first feature to ω, accumulating
        // phase changes of < 90° per step.
        let start = (omega / 1e9).max(1e-6);
        let steps = 400;
        let ratio = (omega / start).powf(1.0 / steps as f64);
        let mut w = start;
        let mut prev = self.eval_jw(w).arg();
        let mut unwrapped = prev;
        for _ in 0..steps {
            w *= ratio;
            let cur = self.eval_jw(w).arg();
            let mut delta = cur - prev;
            while delta > std::f64::consts::PI {
                delta -= 2.0 * std::f64::consts::PI;
            }
            while delta < -std::f64::consts::PI {
                delta += 2.0 * std::f64::consts::PI;
            }
            unwrapped += delta;
            prev = cur;
        }
        unwrapped.to_degrees()
    }

    /// DC gain `H(0)`.
    pub fn dc_gain(&self) -> f64 {
        self.num.eval_real(0.0) / self.den.eval_real(0.0)
    }

    /// Pole locations (roots of the denominator).
    pub fn poles(&self) -> Vec<Complex> {
        self.den.roots()
    }

    /// Zero locations (roots of the numerator).
    pub fn zeros(&self) -> Vec<Complex> {
        self.num.roots()
    }

    /// Unity-gain (0 dB crossover) angular frequency, found by bisection
    /// over a log sweep; `None` when the magnitude never crosses 1.
    pub fn unity_gain_freq(&self) -> Option<f64> {
        let mut lo = 1e-3;
        let mut hi = 1e12;
        let m_lo = self.magnitude(lo);
        let m_hi = self.magnitude(hi);
        if (m_lo - 1.0) * (m_hi - 1.0) > 0.0 {
            return None;
        }
        for _ in 0..200 {
            let mid = (lo.ln() + hi.ln()) / 2.0;
            let mid = mid.exp();
            let m = self.magnitude(mid);
            if (m - 1.0) * (m_lo - 1.0) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some((lo * hi).sqrt())
    }

    /// Phase margin in degrees: `180° + ∠H(jω_u)` at the unity-gain
    /// frequency. `None` when there is no crossover.
    pub fn phase_margin_deg(&self) -> Option<f64> {
        let wu = self.unity_gain_freq()?;
        Some(180.0 + self.phase_deg(wu))
    }

    /// -3 dB bandwidth relative to the DC gain; `None` if the response
    /// never falls 3 dB below DC within the sweep range.
    pub fn bandwidth_3db(&self) -> Option<f64> {
        let target = self.dc_gain().abs() / 2.0_f64.sqrt();
        let mut lo = 1e-3;
        let mut hi = 1e12;
        if self.magnitude(lo) < target || self.magnitude(hi) > target {
            return None;
        }
        for _ in 0..200 {
            let mid = ((lo.ln() + hi.ln()) / 2.0).exp();
            if self.magnitude(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some((lo * hi).sqrt())
    }

    /// Cascade (product) of two transfer functions.
    pub fn cascade(&self, other: &TransferFunction) -> TransferFunction {
        TransferFunction {
            num: self.num.mul(&other.num),
            den: self.den.mul(&other.den),
        }
    }
}

impl fmt::Display for TransferFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H(s) = ({}) / ({})", self.num, self.den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_pole_basics() {
        let h = TransferFunction::single_pole(100.0, 1e4);
        assert!((h.dc_gain() - 100.0).abs() < 1e-12);
        // at the pole: -3dB and -45 degrees
        assert!((h.magnitude_db(1e4) - (40.0 - 3.0103)).abs() < 0.01);
        assert!((h.phase_deg(1e4) + 45.0).abs() < 0.5);
        // unity gain at ~ dc * wp = 1e6 (gain-bandwidth)
        let wu = h.unity_gain_freq().unwrap();
        assert!((wu / 1e6 - 1.0).abs() < 0.01, "wu = {wu}");
        // single-pole phase margin ~ 90 degrees
        let pm = h.phase_margin_deg().unwrap();
        assert!((pm - 90.0).abs() < 1.0, "pm = {pm}");
    }

    #[test]
    fn two_pole_phase_margin_drops() {
        // Second pole at the extrapolated unity-gain frequency. Exact
        // crossover solves x·sqrt(1+x²)=1 with x=ω/1e6 → x≈0.786, and
        // PM = 90° − atan(0.786) ≈ 51.8°.
        let h = TransferFunction::from_poles_zeros(1000.0, &[1e3, 1e6], &[]);
        let wu = h.unity_gain_freq().unwrap();
        assert!((wu / 0.786e6 - 1.0).abs() < 0.02, "wu = {wu}");
        let pm = h.phase_margin_deg().unwrap();
        assert!((pm - 51.8).abs() < 2.0, "pm = {pm}");
        // and it is far worse than the single-pole 90° margin
        let single = TransferFunction::single_pole(1000.0, 1e3);
        assert!(pm < single.phase_margin_deg().unwrap() - 30.0);
    }

    #[test]
    fn poles_and_zeros_recovered() {
        let h = TransferFunction::from_poles_zeros(10.0, &[1e2, 1e5], &[1e4]);
        let poles = h.poles();
        assert_eq!(poles.len(), 2);
        let mut ps: Vec<f64> = poles.iter().map(|p| -p.re).collect();
        ps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((ps[0] - 1e2).abs() / 1e2 < 1e-6);
        assert!((ps[1] - 1e5).abs() / 1e5 < 1e-6);
        let zeros = h.zeros();
        assert_eq!(zeros.len(), 1);
        assert!((-zeros[0].re - 1e4).abs() / 1e4 < 1e-6);
    }

    #[test]
    fn bandwidth_of_single_pole_is_the_pole() {
        let h = TransferFunction::single_pole(50.0, 2e3);
        let bw = h.bandwidth_3db().unwrap();
        assert!((bw / 2e3 - 1.0).abs() < 0.01, "bw = {bw}");
    }

    #[test]
    fn cascade_multiplies_gain() {
        let a = TransferFunction::single_pole(10.0, 1e4);
        let b = TransferFunction::single_pole(20.0, 1e6);
        let c = a.cascade(&b);
        assert!((c.dc_gain() - 200.0).abs() < 1e-9);
        assert_eq!(c.poles().len(), 2);
    }

    #[test]
    fn no_crossover_returns_none() {
        let h = TransferFunction::single_pole(0.5, 1e4); // never reaches 1
        assert!(h.unity_gain_freq().is_none());
        assert!(h.phase_margin_deg().is_none());
    }

    #[test]
    fn zero_denominator_rejected() {
        assert!(TransferFunction::new(Poly::constant(1.0), Poly::constant(0.0)).is_err());
    }

    #[test]
    fn phase_accumulates_beyond_180_for_three_poles() {
        let h = TransferFunction::from_poles_zeros(1e4, &[1e2, 1e3, 1e4], &[]);
        let ph = h.phase_deg(1e7);
        assert!(ph < -200.0, "three poles give ~-270: {ph}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn magnitude_monotone_for_single_pole(
                wp_exp in 2.0f64..8.0,
                dc in 1.0f64..1e4,
            ) {
                let h = TransferFunction::single_pole(dc, 10f64.powf(wp_exp));
                let mut last = h.magnitude(1.0);
                for k in 1..=12 {
                    let w = 10f64.powf(k as f64);
                    let m = h.magnitude(w);
                    prop_assert!(m <= last * (1.0 + 1e-9));
                    last = m;
                }
            }

            #[test]
            fn gain_bandwidth_product_conserved(
                dc_exp in 1.0f64..4.0,
                wp_exp in 2.0f64..5.0,
            ) {
                let dc = 10f64.powf(dc_exp);
                let wp = 10f64.powf(wp_exp);
                let h = TransferFunction::single_pole(dc, wp);
                let wu = h.unity_gain_freq().unwrap();
                let gbw = dc * wp;
                prop_assert!((wu / gbw - 1.0).abs() < 0.02, "wu={} gbw={}", wu, gbw);
            }
        }
    }
}

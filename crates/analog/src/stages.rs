//! Multi-transistor stages: current mirrors, differential pairs and a
//! two-stage op-amp macro-model — the amplifier-level content of the
//! Analog Design question set.

use serde::{Deserialize, Serialize};

use crate::devices::{parallel, Mosfet};
use crate::tf::TransferFunction;

/// A simple current mirror: reference branch device and output device
/// scaled `m : 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurrentMirror {
    /// Mirror ratio (output W/L over reference W/L).
    pub ratio: f64,
    /// Output device small-signal parameters.
    pub out_device: Mosfet,
}

impl CurrentMirror {
    /// Creates a mirror.
    ///
    /// # Panics
    ///
    /// Panics unless the ratio is positive.
    pub fn new(ratio: f64, out_device: Mosfet) -> Self {
        assert!(ratio > 0.0, "mirror ratio must be positive");
        CurrentMirror { ratio, out_device }
    }

    /// Output current for a reference current (ideal square-law copy).
    pub fn output_current(&self, i_ref: f64) -> f64 {
        self.ratio * i_ref
    }

    /// Output resistance of the simple mirror (just `ro`).
    pub fn output_resistance(&self) -> f64 {
        self.out_device.ro
    }

    /// Output resistance when cascoded with an identical device:
    /// `ro (1 + gm·ro) + ro ≈ gm·ro²`.
    pub fn cascode_output_resistance(&self) -> f64 {
        let m = self.out_device;
        m.ro * (1.0 + m.gm * m.ro) + m.ro
    }

    /// Systematic gain error from channel-length modulation when the
    /// drain voltages differ by `dv` (fractional error ≈ dv / (ro·Iout)).
    pub fn mismatch_error(&self, i_ref: f64, dv: f64) -> f64 {
        let iout = self.output_current(i_ref);
        if iout == 0.0 || self.out_device.ro.is_infinite() {
            return 0.0;
        }
        dv / (self.out_device.ro * iout)
    }
}

/// A resistively-loaded (or mirror-loaded) differential pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiffPair {
    /// Per-side input device.
    pub device: Mosfet,
    /// Tail current source output resistance (ohms; `INFINITY` = ideal).
    pub tail_resistance: f64,
    /// Single-ended load resistance per side.
    pub load: f64,
}

impl DiffPair {
    /// Differential-mode gain `Adm = gm (RD ∥ ro)` (differential in,
    /// single-ended out would be half this).
    pub fn differential_gain(&self) -> f64 {
        self.device.gm * parallel(self.load, self.device.ro)
    }

    /// Common-mode gain `Acm ≈ −RD / (2·Rtail)` (gm·Rtail ≫ 1
    /// approximation; 0 for an ideal tail).
    pub fn common_mode_gain(&self) -> f64 {
        if self.tail_resistance.is_infinite() {
            return 0.0;
        }
        -self.load / (2.0 * self.tail_resistance)
    }

    /// Common-mode rejection ratio in dB.
    pub fn cmrr_db(&self) -> f64 {
        let acm = self.common_mode_gain().abs();
        if acm == 0.0 {
            return f64::INFINITY;
        }
        20.0 * (self.differential_gain().abs() / acm).log10()
    }
}

/// A two-stage Miller-compensated op-amp macro-model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoStageOpamp {
    /// First-stage (diff pair) transconductance.
    pub gm1: f64,
    /// First-stage output resistance.
    pub r1: f64,
    /// Second-stage transconductance.
    pub gm2: f64,
    /// Second-stage output resistance.
    pub r2: f64,
    /// Miller compensation capacitor (farads).
    pub cc: f64,
    /// Load capacitance (farads).
    pub cl: f64,
}

impl TwoStageOpamp {
    /// DC open-loop gain `gm1 r1 · gm2 r2`.
    pub fn dc_gain(&self) -> f64 {
        self.gm1 * self.r1 * self.gm2 * self.r2
    }

    /// Dominant pole from Miller multiplication:
    /// `wp1 = 1 / (r1 · Cc · gm2 r2)`.
    pub fn dominant_pole(&self) -> f64 {
        1.0 / (self.r1 * self.cc * self.gm2 * self.r2)
    }

    /// Output (non-dominant) pole `wp2 ≈ gm2 / CL`.
    pub fn second_pole(&self) -> f64 {
        self.gm2 / self.cl
    }

    /// Unity-gain bandwidth `wu ≈ gm1 / Cc`.
    pub fn unity_gain_bandwidth(&self) -> f64 {
        self.gm1 / self.cc
    }

    /// The open-loop transfer function (two-pole model).
    pub fn transfer_function(&self) -> TransferFunction {
        TransferFunction::from_poles_zeros(
            self.dc_gain(),
            &[self.dominant_pole(), self.second_pole()],
            &[],
        )
    }

    /// Phase margin at unity gain under the two-pole model, degrees.
    pub fn phase_margin_deg(&self) -> Option<f64> {
        self.transfer_function().phase_margin_deg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Mosfet {
        Mosfet { gm: 2e-3, ro: 50e3 }
    }

    #[test]
    fn mirror_copies_and_scales() {
        let mir = CurrentMirror::new(2.0, m());
        assert!((mir.output_current(100e-6) - 200e-6).abs() < 1e-15);
        assert_eq!(mir.output_resistance(), 50e3);
    }

    #[test]
    fn cascode_boosts_output_resistance() {
        let mir = CurrentMirror::new(1.0, m());
        let boost = mir.cascode_output_resistance() / mir.output_resistance();
        // gm ro = 100 -> boost ~ 102
        assert!(boost > 90.0 && boost < 120.0, "{boost}");
    }

    #[test]
    fn mismatch_error_scales_with_dv() {
        let mir = CurrentMirror::new(1.0, m());
        let e1 = mir.mismatch_error(100e-6, 0.1);
        let e2 = mir.mismatch_error(100e-6, 0.2);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
        let ideal = CurrentMirror::new(
            1.0,
            Mosfet {
                gm: 2e-3,
                ro: f64::INFINITY,
            },
        );
        assert_eq!(ideal.mismatch_error(100e-6, 0.5), 0.0);
    }

    #[test]
    fn diff_pair_gains_and_cmrr() {
        let dp = DiffPair {
            device: m(),
            tail_resistance: 100e3,
            load: 10e3,
        };
        let adm = dp.differential_gain();
        assert!((adm - 2e-3 * parallel(10e3, 50e3)).abs() < 1e-9);
        let acm = dp.common_mode_gain();
        assert!((acm + 0.05).abs() < 1e-12);
        let cmrr = dp.cmrr_db();
        assert!(cmrr > 40.0 && cmrr < 60.0, "{cmrr}");
    }

    #[test]
    fn ideal_tail_gives_infinite_cmrr() {
        let dp = DiffPair {
            device: m(),
            tail_resistance: f64::INFINITY,
            load: 10e3,
        };
        assert_eq!(dp.common_mode_gain(), 0.0);
        assert!(dp.cmrr_db().is_infinite());
    }

    #[test]
    fn opamp_consistency_with_tf_machinery() {
        let op = TwoStageOpamp {
            gm1: 1e-3,
            r1: 200e3,
            gm2: 4e-3,
            r2: 100e3,
            cc: 2e-12,
            cl: 5e-12,
        };
        // DC gain from formula matches the TF
        let tf = op.transfer_function();
        assert!((tf.dc_gain() - op.dc_gain()).abs() / op.dc_gain() < 1e-12);
        // unity-gain bandwidth ~ gm1/Cc (within two-pole droop)
        let wu = tf.unity_gain_freq().expect("crossover exists");
        let approx = op.unity_gain_bandwidth();
        assert!(
            (wu / approx) > 0.5 && (wu / approx) < 1.2,
            "wu {wu} vs gm1/Cc {approx}"
        );
    }

    #[test]
    fn bigger_cc_improves_phase_margin() {
        let base = TwoStageOpamp {
            gm1: 1e-3,
            r1: 200e3,
            gm2: 4e-3,
            r2: 100e3,
            cc: 1e-12,
            cl: 10e-12,
        };
        let compensated = TwoStageOpamp { cc: 4e-12, ..base };
        let pm_small = base.phase_margin_deg().expect("crossover");
        let pm_big = compensated.phase_margin_deg().expect("crossover");
        assert!(pm_big > pm_small, "{pm_big} vs {pm_small}");
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn zero_ratio_rejected() {
        let _ = CurrentMirror::new(0.0, m());
    }
}

//! Real-coefficient polynomials with complex evaluation and a
//! Durand–Kerner root finder.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::complex::Complex;

/// A polynomial with real coefficients in *ascending* power order:
/// `coeffs[k]` multiplies `s^k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// Creates a polynomial from ascending coefficients, trimming
    /// high-order zeros. An all-zero input produces the zero polynomial.
    pub fn new(coeffs: impl Into<Vec<f64>>) -> Self {
        let mut coeffs = coeffs.into();
        while coeffs.len() > 1 && coeffs.last() == Some(&0.0) {
            coeffs.pop();
        }
        if coeffs.is_empty() {
            coeffs.push(0.0);
        }
        Poly { coeffs }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Poly::new(vec![c])
    }

    /// `(s - root)` as a polynomial.
    pub fn linear_root(root: f64) -> Self {
        Poly::new(vec![-root, 1.0])
    }

    /// Degree (0 for constants, including the zero polynomial).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Ascending coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0.0)
    }

    /// Evaluates at a complex point (Horner).
    pub fn eval(&self, s: Complex) -> Complex {
        let mut acc = Complex::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * s + Complex::from(c);
        }
        acc
    }

    /// Evaluates at a real point.
    pub fn eval_real(&self, x: f64) -> f64 {
        self.coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = vec![0.0; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }

    /// Scales all coefficients.
    pub fn scale(&self, k: f64) -> Poly {
        Poly::new(self.coeffs.iter().map(|&c| c * k).collect::<Vec<_>>())
    }

    /// All complex roots via Durand–Kerner iteration.
    ///
    /// Returns an empty list for constants. Roots of multiplicity > 1
    /// converge more slowly but the iteration cap keeps the call bounded;
    /// accuracy is ample for the pole/zero questions (well-separated real
    /// or conjugate roots).
    pub fn roots(&self) -> Vec<Complex> {
        let n = self.degree();
        if n == 0 || self.is_zero() {
            return Vec::new();
        }
        // Normalise to monic.
        let lead = *self.coeffs.last().expect("nonempty");
        let monic: Vec<f64> = self.coeffs.iter().map(|&c| c / lead).collect();
        let poly = Poly { coeffs: monic };

        // Initial guesses on a non-symmetric spiral (classic DK choice).
        let mut guesses: Vec<Complex> = (0..n)
            .map(|k| Complex::from_polar(1.0 + 0.3 * k as f64 / n as f64, 0.4 + 2.3 * k as f64))
            .collect();
        // Radius hint from coefficient magnitudes (Cauchy bound).
        let bound = 1.0
            + poly.coeffs[..n]
                .iter()
                .map(|c| c.abs())
                .fold(0.0f64, f64::max);
        for (k, g) in guesses.iter_mut().enumerate() {
            *g = *g * (bound * (0.5 + 0.5 * (k as f64 + 1.0) / n as f64));
        }

        for _ in 0..200 {
            let mut max_step = 0.0f64;
            let snapshot = guesses.clone();
            for i in 0..n {
                let zi = snapshot[i];
                let mut denom = Complex::ONE;
                for (j, &zj) in snapshot.iter().enumerate() {
                    if j != i {
                        denom = denom * (zi - zj);
                    }
                }
                if denom.abs() < 1e-300 {
                    continue;
                }
                let step = poly.eval(zi) / denom;
                guesses[i] = zi - step;
                max_step = max_step.max(step.abs());
            }
            if max_step < 1e-12 * bound.max(1.0) {
                break;
            }
        }
        // Snap nearly-real roots onto the real axis for stable reporting.
        for g in &mut guesses {
            if g.im.abs() < 1e-7 * (1.0 + g.re.abs()) {
                g.im = 0.0;
            }
        }
        guesses.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.im.partial_cmp(&b.im).unwrap_or(std::cmp::Ordering::Equal))
        });
        guesses
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 && self.degree() > 0 {
                continue;
            }
            if !first {
                write!(f, " + ")?;
            }
            match k {
                0 => write!(f, "{c:.4}")?,
                1 => write!(f, "{c:.4}s")?,
                _ => write!(f, "{c:.4}s^{k}")?,
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trims_leading_zeros() {
        let p = Poly::new(vec![1.0, 2.0, 0.0, 0.0]);
        assert_eq!(p.degree(), 1);
        assert_eq!(p.coeffs(), &[1.0, 2.0]);
    }

    #[test]
    fn horner_matches_direct() {
        let p = Poly::new(vec![1.0, -3.0, 2.0]); // 2s^2 - 3s + 1
        assert_eq!(p.eval_real(2.0), 3.0);
        let z = p.eval(Complex::new(0.0, 1.0)); // s = j
                                                // 2(-1) - 3j + 1 = -1 - 3j
        assert!((z - Complex::new(-1.0, -3.0)).abs() < 1e-12);
    }

    #[test]
    fn multiplication() {
        let a = Poly::linear_root(1.0); // s - 1
        let b = Poly::linear_root(-2.0); // s + 2
        let p = a.mul(&b); // s^2 + s - 2
        assert_eq!(p.coeffs(), &[-2.0, 1.0, 1.0]);
    }

    #[test]
    fn roots_of_quadratic() {
        // (s+10)(s+1000)
        let p = Poly::linear_root(-10.0).mul(&Poly::linear_root(-1000.0));
        let roots = p.roots();
        assert_eq!(roots.len(), 2);
        assert!((roots[1].re + 10.0).abs() < 1e-6, "{roots:?}");
        assert!((roots[0].re + 1000.0).abs() < 1e-3, "{roots:?}");
        assert!(roots.iter().all(|r| r.im == 0.0));
    }

    #[test]
    fn complex_conjugate_roots() {
        // s^2 + 2s + 5 -> -1 ± 2j
        let p = Poly::new(vec![5.0, 2.0, 1.0]);
        let roots = p.roots();
        assert_eq!(roots.len(), 2);
        for r in &roots {
            assert!((r.re + 1.0).abs() < 1e-8, "{roots:?}");
            assert!((r.im.abs() - 2.0).abs() < 1e-8, "{roots:?}");
        }
    }

    #[test]
    fn constant_has_no_roots() {
        assert!(Poly::constant(4.0).roots().is_empty());
        assert!(Poly::constant(0.0).roots().is_empty());
    }

    #[test]
    fn widely_spread_real_roots() {
        // poles at -1, -1e3, -1e6 (typical amplifier spread)
        let p = Poly::linear_root(-1.0)
            .mul(&Poly::linear_root(-1e3))
            .mul(&Poly::linear_root(-1e6));
        let roots = p.roots();
        let mut res: Vec<f64> = roots.iter().map(|r| r.re).collect();
        res.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((res[0] + 1e6).abs() / 1e6 < 1e-6);
        assert!((res[1] + 1e3).abs() / 1e3 < 1e-6);
        assert!((res[2] + 1.0).abs() < 1e-6);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn product_of_linear_factors_recovers_roots(
                r1 in -100.0f64..-0.1,
                r2 in -100.0f64..-0.1,
            ) {
                prop_assume!((r1 - r2).abs() > 0.5);
                let p = Poly::linear_root(r1).mul(&Poly::linear_root(r2));
                let roots = p.roots();
                let mut found: Vec<f64> = roots.iter().map(|r| r.re).collect();
                found.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let mut want = vec![r1, r2];
                want.sort_by(|a, b| a.partial_cmp(b).unwrap());
                for (f, w) in found.iter().zip(&want) {
                    prop_assert!((f - w).abs() < 1e-5 * (1.0 + w.abs()), "{} vs {}", f, w);
                }
            }
        }
    }
}

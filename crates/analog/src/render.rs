//! Procedural drawings of analog visuals: amplifier schematics, Bode
//! plots, feedback block diagrams and ADC pipelines.

use chipvqa_raster::{Annotated, Pixmap, Region, BLACK};

use crate::adc::{Adc, AdcKind};
use crate::devices::Mosfet;
use crate::tf::TransferFunction;

const STROKE: i64 = 2;
const TEXT: i64 = 2;

/// Draws a resistor as the IEC box symbol with a value label; returns the
/// label region.
fn draw_resistor_v(img: &mut Pixmap, x: i64, y: i64, len: i64, label: &str) -> Region {
    let bw = 18i64;
    let bh = len - 16;
    img.draw_line(x, y, x, y + 8, STROKE, BLACK);
    img.draw_rect(x - bw / 2, y + 8, bw, bh, STROKE, BLACK);
    img.draw_line(x, y + 8 + bh, x, y + len, STROKE, BLACK);
    img.draw_text(x + bw / 2 + 6, y + len / 2 - 6, label, TEXT, BLACK);
    Region::new(
        (x + bw / 2 + 6).max(0) as usize,
        (y + len / 2 - 8).max(0) as usize,
        (label.len() as i64 * 12 + 4) as usize,
        20,
    )
}

/// Draws an NMOS symbol with the gate on the left at `(x, y)` being the
/// channel centre; returns the gate-label region.
fn draw_nmos(img: &mut Pixmap, x: i64, y: i64, name: &str) -> Region {
    // gate bar
    img.draw_line(x - 26, y, x - 10, y, STROKE, BLACK);
    img.draw_line(x - 10, y - 14, x - 10, y + 14, STROKE, BLACK);
    // channel bar
    img.draw_line(x - 4, y - 16, x - 4, y + 16, STROKE, BLACK);
    // drain/source stubs
    img.draw_line(x - 4, y - 14, x + 14, y - 14, STROKE, BLACK);
    img.draw_line(x + 14, y - 14, x + 14, y - 30, STROKE, BLACK);
    img.draw_line(x - 4, y + 14, x + 14, y + 14, STROKE, BLACK);
    img.draw_line(x + 14, y + 14, x + 14, y + 30, STROKE, BLACK);
    // arrow on source (NMOS)
    img.draw_arrow(x + 10, y + 14, x - 2, y + 14, 1, BLACK);
    img.draw_text(x - 26, y - 30, name, TEXT, BLACK);
    Region::new(
        (x - 28).max(0) as usize,
        (y - 32).max(0) as usize,
        (name.len() as i64 * 12 + 40) as usize,
        64,
    )
}

/// Renders a common-source amplifier schematic with device parameters
/// annotated (`gm`, `ro`, `RD`, optional `RS`). Marks cover the device,
/// each resistor label and the input/output ports — the facts a model
/// must read to compute the gain.
pub fn render_cs_amplifier(m: Mosfet, rd: f64, rs: f64) -> Annotated {
    let mut img = Pixmap::new(420, 360);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let cx = 220i64;
    let cy = 180i64;

    // VDD rail
    img.draw_line(cx - 60, 30, cx + 90, 30, STROKE, BLACK);
    img.draw_text(cx + 96, 24, "VDD", TEXT, BLACK);
    // RD from VDD to drain
    let rd_label = format!("RD={}k", trim_num(rd / 1e3));
    let r = draw_resistor_v(&mut img, cx + 14, 30, 106, &rd_label);
    marks.push((format!("load resistor {rd_label}"), r));
    // MOSFET
    let g = draw_nmos(&mut img, cx, cy - 14, "M1");
    marks.push((
        format!(
            "NMOS gm={}mS ro={}k",
            trim_num(m.gm * 1e3),
            trim_num(m.ro / 1e3)
        ),
        g,
    ));
    img.draw_text(
        cx + 20,
        cy - 6,
        &format!("gm={}mS", trim_num(m.gm * 1e3)),
        TEXT,
        BLACK,
    );
    // input
    img.draw_line(cx - 80, cy - 14, cx - 26, cy - 14, STROKE, BLACK);
    img.draw_text(cx - 120, cy - 20, "vin", TEXT, BLACK);
    marks.push((
        "input port vin at the gate".to_string(),
        Region::new((cx - 122) as usize, (cy - 24) as usize, 50, 24),
    ));
    // output at drain
    img.draw_line(cx + 14, cy - 44, cx + 90, cy - 44, STROKE, BLACK);
    img.draw_text(cx + 96, cy - 50, "vout", TEXT, BLACK);
    marks.push((
        "output port vout at the drain".to_string(),
        Region::new((cx + 94) as usize, (cy - 54) as usize, 58, 24),
    ));
    // source network
    if rs > 0.0 {
        let rs_label = format!("RS={}k", trim_num(rs / 1e3));
        let reg = draw_resistor_v(&mut img, cx + 14, cy + 16, 80, &rs_label);
        marks.push((format!("degeneration resistor {rs_label}"), reg));
        draw_ground(&mut img, cx + 14, cy + 96);
    } else {
        img.draw_line(cx + 14, cy + 16, cx + 14, cy + 50, STROKE, BLACK);
        draw_ground(&mut img, cx + 14, cy + 50);
    }
    let mut annotated = Annotated::new(img);
    for (label, region) in marks {
        annotated.mark(label, region);
    }
    annotated
}

fn draw_ground(img: &mut Pixmap, x: i64, y: i64) {
    img.draw_line(x - 14, y, x + 14, y, STROKE, BLACK);
    img.draw_line(x - 9, y + 5, x + 9, y + 5, STROKE, BLACK);
    img.draw_line(x - 4, y + 10, x + 4, y + 10, STROKE, BLACK);
}

fn trim_num(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.1}")
    }
}

/// Renders a Bode magnitude plot of `tf` over `decades` decades starting
/// at `w_start` rad/s. Marks the DC-gain plateau and the 0 dB crossover.
pub fn render_bode(tf: &TransferFunction, w_start: f64, decades: u32) -> Annotated {
    let w_px = 460usize;
    let h_px = 300usize;
    let mut img = Pixmap::new(w_px, h_px);
    let mut marks: Vec<(String, Region)> = Vec::new();
    let (ox, oy) = (60i64, 20i64);
    let plot_w = w_px as i64 - ox - 20;
    let plot_h = h_px as i64 - oy - 50;

    // axes
    img.draw_line(ox, oy, ox, oy + plot_h, STROKE, BLACK);
    img.draw_line(ox, oy + plot_h, ox + plot_w, oy + plot_h, STROKE, BLACK);
    img.draw_text(4, oy, "dB", TEXT, BLACK);
    img.draw_text(ox + plot_w - 60, oy + plot_h + 16, "w rad/s", TEXT, BLACK);

    // sample the curve
    let samples = 160usize;
    let db_max = tf.magnitude_db(w_start).max(20.0).ceil();
    let db_min = -40.0f64;
    let to_y = |db: f64| -> i64 {
        let t = (db_max - db) / (db_max - db_min);
        oy + (t.clamp(0.0, 1.0) * plot_h as f64) as i64
    };
    let mut pts = Vec::with_capacity(samples);
    for i in 0..samples {
        let frac = i as f64 / (samples - 1) as f64;
        let w = w_start * 10f64.powf(frac * f64::from(decades));
        let db = tf.magnitude_db(w);
        let x = ox + (frac * plot_w as f64) as i64;
        pts.push((x, to_y(db)));
    }
    img.draw_polyline(&pts, STROKE, BLACK);

    // 0 dB gridline
    let y0 = to_y(0.0);
    img.draw_dashed_line(ox, y0, ox + plot_w, y0, 1, BLACK, 4, 4);
    img.draw_text(ox - 30, y0 - 6, "0", TEXT, BLACK);

    // DC gain label
    let dc_db = tf.magnitude_db(w_start);
    img.draw_text(
        ox + 8,
        to_y(dc_db) - 18,
        &format!("{:.0}dB", dc_db),
        TEXT,
        BLACK,
    );
    marks.push((
        format!("low-frequency gain {:.0} dB", dc_db),
        Region::new(
            (ox + 8) as usize,
            (to_y(dc_db) - 20).max(0) as usize,
            80,
            24,
        ),
    ));
    // crossover
    if let Some(wu) = tf.unity_gain_freq() {
        let frac = (wu / w_start).log10() / f64::from(decades);
        if (0.0..=1.0).contains(&frac) {
            let x = ox + (frac * plot_w as f64) as i64;
            img.fill_circle(x, y0, 4, BLACK);
            marks.push((
                format!("unity-gain crossover near {:.2e} rad/s", wu),
                Region::new((x - 8).max(0) as usize, (y0 - 8).max(0) as usize, 16, 16),
            ));
        }
    }
    let mut annotated = Annotated::new(img);
    for (label, region) in marks {
        annotated.mark(label, region);
    }
    annotated
}

/// Renders the classic negative-feedback block diagram (summing node,
/// forward block `a`, feedback block `β`).
pub fn render_feedback_block(a: f64, beta: f64) -> Annotated {
    let mut img = Pixmap::new(420, 220);
    let mut marks: Vec<(String, Region)> = Vec::new();
    // summing junction
    img.draw_circle(80, 80, 14, STROKE, BLACK);
    img.draw_text(72, 72, "+", TEXT, BLACK);
    // forward block
    img.draw_rect(150, 55, 90, 50, STROKE, BLACK);
    let a_label = format!("a={}", trim_num(a));
    img.draw_text(160, 72, &a_label, TEXT, BLACK);
    marks.push((
        format!("forward amplifier {a_label}"),
        Region::new(150, 55, 90, 50),
    ));
    // feedback block
    img.draw_rect(150, 140, 90, 44, STROKE, BLACK);
    let b_label = format!("B={}", trim_num(beta));
    img.draw_text(160, 154, &b_label, TEXT, BLACK);
    marks.push((
        format!("feedback network {b_label}"),
        Region::new(150, 140, 90, 44),
    ));
    // wiring
    img.draw_arrow(20, 80, 64, 80, STROKE, BLACK);
    img.draw_text(10, 60, "x", TEXT, BLACK);
    img.draw_arrow(94, 80, 150, 80, STROKE, BLACK);
    img.draw_arrow(240, 80, 360, 80, STROKE, BLACK);
    img.draw_text(366, 72, "y", TEXT, BLACK);
    img.draw_polyline(&[(320, 80), (320, 162), (240, 162)], STROKE, BLACK);
    img.draw_polyline(&[(150, 162), (80, 162), (80, 94)], STROKE, BLACK);
    img.draw_text(56, 104, "-", TEXT, BLACK);
    marks.push((
        "negative sign at the summing junction".to_string(),
        Region::new(50, 96, 20, 20),
    ));
    let mut annotated = Annotated::new(img);
    for (label, region) in marks {
        annotated.mark(label, region);
    }
    annotated
}

/// Renders an ADC as a block chain (stages for pipeline, comparator bank
/// note for flash, single comparator + DAC loop note for SAR).
pub fn render_adc(adc: &Adc) -> Annotated {
    let mut img = Pixmap::new(460, 180);
    let mut marks: Vec<(String, Region)> = Vec::new();
    match adc.kind {
        AdcKind::Pipeline { bits_per_stage } => {
            let stages = adc.bits.div_ceil(bits_per_stage) as i64;
            let shown = stages.min(5);
            for i in 0..shown {
                let x = 20 + i * 86;
                img.draw_rect(x, 60, 70, 50, STROKE, BLACK);
                let label = format!("S{} {}b", i + 1, bits_per_stage);
                img.draw_text(x + 6, 76, &label, TEXT, BLACK);
                if i + 1 < shown {
                    img.draw_arrow(x + 70, 85, x + 86, 85, STROKE, BLACK);
                }
                marks.push((
                    format!("pipeline stage {label}"),
                    Region::new(x as usize, 60, 70, 50),
                ));
            }
            img.draw_text(20, 130, &format!("{} stages total", stages), TEXT, BLACK);
        }
        AdcKind::Flash => {
            img.draw_rect(120, 40, 160, 90, STROKE, BLACK);
            let label = format!("{} comparators", adc.comparator_count());
            img.draw_text(130, 70, &label, TEXT, BLACK);
            marks.push((
                format!("flash bank: {label}"),
                Region::new(120, 40, 160, 90),
            ));
        }
        AdcKind::Sar => {
            img.draw_rect(110, 40, 100, 50, STROKE, BLACK);
            img.draw_text(120, 56, "CMP", TEXT, BLACK);
            img.draw_rect(110, 110, 100, 50, STROKE, BLACK);
            img.draw_text(120, 126, "DAC", TEXT, BLACK);
            img.draw_arrow(160, 90, 160, 110, STROKE, BLACK);
            img.draw_polyline(&[(110, 135), (70, 135), (70, 65), (110, 65)], STROKE, BLACK);
            let label = format!("{}-cycle SAR loop", adc.conversion_cycles());
            img.draw_text(230, 70, &label, TEXT, BLACK);
            marks.push((label, Region::new(228, 64, 180, 24)));
        }
    }
    let mut annotated = Annotated::new(img);
    for (label, region) in marks {
        annotated.mark(label, region);
    }
    annotated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cs_schematic_marks_parameters() {
        let m = Mosfet { gm: 2e-3, ro: 50e3 };
        let vis = render_cs_amplifier(m, 10e3, 1e3);
        assert!(vis.marks.len() >= 5);
        assert!(vis.marks.iter().any(|mk| mk.label.contains("RD=10k")));
        assert!(vis.marks.iter().any(|mk| mk.label.contains("RS=1k")));
        assert!(vis.image.ink_pixels() > 200);
    }

    #[test]
    fn cs_schematic_without_degeneration() {
        let m = Mosfet {
            gm: 1e-3,
            ro: 100e3,
        };
        let vis = render_cs_amplifier(m, 5e3, 0.0);
        assert!(!vis.marks.iter().any(|mk| mk.label.contains("RS=")));
    }

    #[test]
    fn bode_marks_crossover() {
        let tf = TransferFunction::single_pole(1000.0, 1e3);
        let vis = render_bode(&tf, 1.0, 8);
        assert!(vis.marks.iter().any(|m| m.label.contains("crossover")));
        assert!(vis.image.ink_pixels() > 400);
    }

    #[test]
    fn feedback_block_has_both_blocks() {
        let vis = render_feedback_block(1e4, 0.01);
        assert!(vis.marks.iter().any(|m| m.label.contains("forward")));
        assert!(vis.marks.iter().any(|m| m.label.contains("feedback")));
    }

    #[test]
    fn adc_renders_each_kind() {
        for kind in [
            AdcKind::Flash,
            AdcKind::Sar,
            AdcKind::Pipeline { bits_per_stage: 2 },
        ] {
            let adc = Adc::new(kind, 8, 1.0);
            let vis = render_adc(&adc);
            assert!(!vis.marks.is_empty(), "{kind:?}");
            assert!(vis.image.ink_pixels() > 100, "{kind:?}");
        }
    }
}

//! Noise analysis: thermal and MOSFET channel noise densities,
//! integrated noise and SNR — the noise-floor side of amplifier design
//! questions.

use serde::{Deserialize, Serialize};

use crate::devices::Mosfet;

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Thermal (Johnson) noise voltage density of a resistor:
/// `√(4kTR)` in V/√Hz.
///
/// # Panics
///
/// Panics on non-positive resistance or temperature.
pub fn resistor_noise_density(r_ohms: f64, temp_k: f64) -> f64 {
    assert!(r_ohms > 0.0 && temp_k > 0.0, "positive R and T required");
    (4.0 * BOLTZMANN * temp_k * r_ohms).sqrt()
}

/// MOSFET channel thermal-noise *current* density `√(4kT·γ·gm)` in
/// A/√Hz, with γ the excess-noise coefficient (2/3 long-channel).
pub fn mosfet_noise_current_density(m: Mosfet, gamma: f64, temp_k: f64) -> f64 {
    assert!(gamma > 0.0 && temp_k > 0.0, "positive gamma and T required");
    (4.0 * BOLTZMANN * temp_k * gamma * m.gm).sqrt()
}

/// Input-referred noise voltage density of a MOSFET,
/// `√(4kTγ/gm)` in V/√Hz — bigger gm buys a quieter input.
pub fn mosfet_input_noise_density(m: Mosfet, gamma: f64, temp_k: f64) -> f64 {
    mosfet_noise_current_density(m, gamma, temp_k) / m.gm
}

/// Integrated RMS noise over a brick-wall bandwidth: `density·√BW`.
pub fn integrated_noise(density_per_rt_hz: f64, bandwidth_hz: f64) -> f64 {
    density_per_rt_hz * bandwidth_hz.max(0.0).sqrt()
}

/// `kT/C` sampled-noise RMS voltage of a switched capacitor, in volts.
///
/// # Panics
///
/// Panics on non-positive capacitance or temperature.
pub fn ktc_noise(c_farads: f64, temp_k: f64) -> f64 {
    assert!(c_farads > 0.0 && temp_k > 0.0, "positive C and T required");
    (BOLTZMANN * temp_k / c_farads).sqrt()
}

/// Signal-to-noise ratio in dB for an RMS signal over an RMS noise.
pub fn snr_db(signal_rms: f64, noise_rms: f64) -> f64 {
    20.0 * (signal_rms / noise_rms).log10()
}

/// A noise budget for a simple amplifier front end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseBudget {
    /// Source resistance (ohms).
    pub r_source: f64,
    /// Input device.
    pub device: Mosfet,
    /// Excess-noise coefficient.
    pub gamma: f64,
    /// Temperature (K).
    pub temp_k: f64,
    /// Noise bandwidth (Hz).
    pub bandwidth_hz: f64,
}

impl NoiseBudget {
    /// Total input-referred RMS noise: resistor and device contributions
    /// added in power.
    pub fn total_input_noise_rms(&self) -> f64 {
        let vr = resistor_noise_density(self.r_source, self.temp_k);
        let vd = mosfet_input_noise_density(self.device, self.gamma, self.temp_k);
        integrated_noise((vr * vr + vd * vd).sqrt(), self.bandwidth_hz)
    }

    /// Which contributor dominates (`"source resistor"` or `"device"`).
    pub fn dominant_contributor(&self) -> &'static str {
        let vr = resistor_noise_density(self.r_source, self.temp_k);
        let vd = mosfet_input_noise_density(self.device, self.gamma, self.temp_k);
        if vr >= vd {
            "source resistor"
        } else {
            "device"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROOM: f64 = 300.0;

    #[test]
    fn one_kilohm_reference_value() {
        // classic: 1 kOhm at 300 K ≈ 4.07 nV/√Hz
        let d = resistor_noise_density(1_000.0, ROOM);
        assert!((d / 4.07e-9 - 1.0).abs() < 0.01, "{d}");
    }

    #[test]
    fn noise_scales_with_sqrt_r() {
        let d1 = resistor_noise_density(1_000.0, ROOM);
        let d4 = resistor_noise_density(4_000.0, ROOM);
        assert!((d4 / d1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_gm_is_quieter_at_the_input() {
        let small = Mosfet { gm: 1e-3, ro: 50e3 };
        let big = Mosfet {
            gm: 10e-3,
            ro: 50e3,
        };
        let ns = mosfet_input_noise_density(small, 2.0 / 3.0, ROOM);
        let nb = mosfet_input_noise_density(big, 2.0 / 3.0, ROOM);
        assert!(nb < ns);
        assert!((ns / nb - 10f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn ktc_reference_value() {
        // 1 pF at 300 K ≈ 64 µV rms
        let v = ktc_noise(1e-12, ROOM);
        assert!((v / 64.4e-6 - 1.0).abs() < 0.02, "{v}");
        // doubling C reduces noise by √2
        assert!((ktc_noise(1e-12, ROOM) / ktc_noise(2e-12, ROOM) - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn snr_matches_definition() {
        assert!((snr_db(1.0, 0.001) - 60.0).abs() < 1e-9);
        assert!((snr_db(1.0, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn budget_dominance_flips_with_source_resistance() {
        let device = Mosfet { gm: 5e-3, ro: 50e3 };
        let quiet_source = NoiseBudget {
            r_source: 10.0,
            device,
            gamma: 2.0 / 3.0,
            temp_k: ROOM,
            bandwidth_hz: 1e6,
        };
        assert_eq!(quiet_source.dominant_contributor(), "device");
        let noisy_source = NoiseBudget {
            r_source: 100e3,
            ..quiet_source
        };
        assert_eq!(noisy_source.dominant_contributor(), "source resistor");
        assert!(noisy_source.total_input_noise_rms() > quiet_source.total_input_noise_rms());
    }

    #[test]
    fn integrated_noise_sqrt_bandwidth() {
        let d = 4e-9;
        assert!((integrated_noise(d, 1e6) / (d * 1e3) - 1.0).abs() < 1e-12);
        assert_eq!(integrated_noise(d, 0.0), 0.0);
    }
}

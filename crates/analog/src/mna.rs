//! Modified nodal analysis (MNA) for linear DC / small-signal circuits.
//!
//! Supports resistors, independent current sources, independent voltage
//! sources (group-2 elements with explicit branch currents) and
//! voltage-controlled current sources (the small-signal `gm` stamp), which
//! is exactly what linearised transistor amplifier analysis needs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Handle to a voltage source inside a [`Circuit`] (indexes the extra MNA
/// unknown carrying its branch current).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SourceId(usize);

/// One circuit element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Element {
    /// Resistor between two nodes.
    Resistor {
        /// First terminal.
        a: usize,
        /// Second terminal.
        b: usize,
        /// Resistance in ohms (must be positive).
        ohms: f64,
    },
    /// Independent current source pushing `amps` from `from` into `to`.
    CurrentSource {
        /// Current leaves this node.
        from: usize,
        /// Current enters this node.
        to: usize,
        /// Source current in amperes.
        amps: f64,
    },
    /// Independent voltage source: `V(plus) - V(minus) = volts`.
    VoltageSource {
        /// Positive terminal.
        plus: usize,
        /// Negative terminal.
        minus: usize,
        /// Source voltage in volts.
        volts: f64,
    },
    /// Voltage-controlled current source: current `gm * (V(cp) - V(cn))`
    /// flows from `from` into `to` (the MOSFET small-signal stamp with
    /// `cp`=gate, `cn`=source, `from`=drain... depending on orientation).
    Vccs {
        /// Current leaves this node.
        from: usize,
        /// Current enters this node.
        to: usize,
        /// Positive control node.
        cp: usize,
        /// Negative control node.
        cn: usize,
        /// Transconductance in siemens.
        gm: f64,
    },
}

/// Error solving a circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The MNA matrix is singular (floating node, source loop, …).
    Singular,
    /// A resistor had a non-positive resistance.
    BadResistance {
        /// The offending value.
        ohms: f64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Singular => write!(f, "singular MNA system (floating node or source loop)"),
            SolveError::BadResistance { ohms } => {
                write!(f, "non-positive resistance {ohms} ohms")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// A linear circuit under construction. Node `0` is ground; other node
/// numbers are allocated implicitly by mentioning them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    elements: Vec<Element>,
    num_nodes: usize,   // highest node index + 1 (including ground)
    num_sources: usize, // voltage sources
}

/// The solved operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    node_voltages: Vec<f64>, // index 0 = ground = 0.0
    source_currents: Vec<f64>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Circuit::default()
    }

    fn touch(&mut self, node: usize) {
        self.num_nodes = self.num_nodes.max(node + 1);
    }

    /// Adds a resistor between nodes `a` and `b`.
    pub fn add_resistor(&mut self, a: usize, b: usize, ohms: f64) {
        self.touch(a);
        self.touch(b);
        self.elements.push(Element::Resistor { a, b, ohms });
    }

    /// Adds an independent current source pushing `amps` from node `from`
    /// into node `to`.
    pub fn add_current_source(&mut self, from: usize, to: usize, amps: f64) {
        self.touch(from);
        self.touch(to);
        self.elements
            .push(Element::CurrentSource { from, to, amps });
    }

    /// Adds an independent voltage source (`V(plus) − V(minus) = volts`)
    /// and returns its id for later current lookup.
    pub fn add_voltage_source(&mut self, plus: usize, minus: usize, volts: f64) -> SourceId {
        self.touch(plus);
        self.touch(minus);
        self.elements
            .push(Element::VoltageSource { plus, minus, volts });
        let id = SourceId(self.num_sources);
        self.num_sources += 1;
        id
    }

    /// Adds a VCCS: `gm · (V(cp) − V(cn))` amperes flow from `from` to
    /// `to`.
    pub fn add_vccs(&mut self, from: usize, to: usize, cp: usize, cn: usize, gm: f64) {
        for n in [from, to, cp, cn] {
            self.touch(n);
        }
        self.elements.push(Element::Vccs {
            from,
            to,
            cp,
            cn,
            gm,
        });
    }

    /// Number of nodes mentioned so far (including ground).
    pub fn node_count(&self) -> usize {
        self.num_nodes.max(1)
    }

    /// The elements added so far.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Solves the DC operating point.
    ///
    /// # Errors
    ///
    /// [`SolveError::BadResistance`] for non-positive resistors and
    /// [`SolveError::Singular`] when the system has no unique solution
    /// (e.g. a floating subcircuit).
    pub fn solve(&self) -> Result<Solution, SolveError> {
        let n = self.node_count() - 1; // unknown node voltages (ground fixed)
        let m = self.num_sources;
        let dim = n + m;
        if dim == 0 {
            return Ok(Solution {
                node_voltages: vec![0.0],
                source_currents: Vec::new(),
            });
        }
        let mut a = vec![vec![0.0f64; dim]; dim];
        let mut z = vec![0.0f64; dim];
        // Helper: matrix row/col index of a node (None for ground).
        let idx = |node: usize| -> Option<usize> { (node > 0).then(|| node - 1) };

        let mut source_seen = 0usize;
        for el in &self.elements {
            match *el {
                Element::Resistor { a: na, b: nb, ohms } => {
                    if ohms <= 0.0 {
                        return Err(SolveError::BadResistance { ohms });
                    }
                    let g = 1.0 / ohms;
                    if let Some(i) = idx(na) {
                        a[i][i] += g;
                    }
                    if let Some(j) = idx(nb) {
                        a[j][j] += g;
                    }
                    if let (Some(i), Some(j)) = (idx(na), idx(nb)) {
                        a[i][j] -= g;
                        a[j][i] -= g;
                    }
                }
                Element::CurrentSource { from, to, amps } => {
                    if let Some(i) = idx(from) {
                        z[i] -= amps;
                    }
                    if let Some(j) = idx(to) {
                        z[j] += amps;
                    }
                }
                Element::VoltageSource { plus, minus, volts } => {
                    let k = n + source_seen;
                    source_seen += 1;
                    if let Some(i) = idx(plus) {
                        a[i][k] += 1.0;
                        a[k][i] += 1.0;
                    }
                    if let Some(j) = idx(minus) {
                        a[j][k] -= 1.0;
                        a[k][j] -= 1.0;
                    }
                    z[k] = volts;
                }
                Element::Vccs {
                    from,
                    to,
                    cp,
                    cn,
                    gm,
                } => {
                    // I(from->to) = gm (Vcp - Vcn): stamp into KCL rows.
                    for (node, sign) in [(from, 1.0), (to, -1.0)] {
                        if let Some(r) = idx(node) {
                            if let Some(c) = idx(cp) {
                                a[r][c] += sign * gm;
                            }
                            if let Some(c) = idx(cn) {
                                a[r][c] -= sign * gm;
                            }
                        }
                    }
                }
            }
        }

        let x = gaussian_solve(a, z).ok_or(SolveError::Singular)?;
        let mut node_voltages = vec![0.0];
        node_voltages.extend_from_slice(&x[..n]);
        let source_currents = x[n..].to_vec();
        Ok(Solution {
            node_voltages,
            source_currents,
        })
    }
}

impl Solution {
    /// Voltage of `node` relative to ground.
    ///
    /// # Panics
    ///
    /// Panics if the node was never mentioned in the circuit.
    pub fn voltage(&self, node: usize) -> f64 {
        self.node_voltages[node]
    }

    /// Current delivered *through* a voltage source (flowing from its
    /// `plus` terminal through the external circuit back to `minus`;
    /// positive values mean the source drives current out of `plus`).
    ///
    /// MNA's sign convention has the branch current flowing `plus → minus`
    /// *inside* the source, so this accessor negates it to report the
    /// conventional "sourced" current.
    pub fn source_current(&self, id: SourceId) -> f64 {
        -self.source_currents[id.0]
    }

    /// All node voltages, indexed by node number (ground first).
    pub fn voltages(&self) -> &[f64] {
        &self.node_voltages
    }
}

/// Dense Gaussian elimination with partial pivoting; `None` for singular
/// systems.
fn gaussian_solve(mut a: Vec<Vec<f64>>, mut z: Vec<f64>) -> Option<Vec<f64>> {
    let n = z.len();
    for col in 0..n {
        // pivot
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        z.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            let (top, bottom) = a.split_at_mut(row);
            for (dst, &src) in bottom[0][col..].iter_mut().zip(&top[col][col..]) {
                *dst -= f * src;
            }
            z[row] -= f * z[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = z[row];
        for k in row + 1..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Equivalent resistance seen between `node` and ground for a resistive
/// network: injects a 1 A test current and reads the voltage.
///
/// # Errors
///
/// Propagates [`SolveError`] from the underlying solve.
pub fn equivalent_resistance(ckt: &Circuit, node: usize) -> Result<f64, SolveError> {
    let mut test = ckt.clone();
    test.add_current_source(0, node, 1.0);
    let sol = test.solve()?;
    Ok(sol.voltage(node))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_divider() {
        let mut ckt = Circuit::new();
        ckt.add_voltage_source(1, 0, 10.0);
        ckt.add_resistor(1, 2, 2_000.0);
        ckt.add_resistor(2, 0, 3_000.0);
        let sol = ckt.solve().unwrap();
        assert!((sol.voltage(2) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn source_current_sign() {
        // 5V across 1k: source drives 5 mA out of its plus terminal.
        let mut ckt = Circuit::new();
        let v = ckt.add_voltage_source(1, 0, 5.0);
        ckt.add_resistor(1, 0, 1_000.0);
        let sol = ckt.solve().unwrap();
        assert!((sol.source_current(v) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        ckt.add_current_source(0, 1, 0.002);
        ckt.add_resistor(1, 0, 1_500.0);
        let sol = ckt.solve().unwrap();
        assert!((sol.voltage(1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wheatstone_bridge_balanced() {
        // Balanced bridge: no current through the detector resistor.
        let mut ckt = Circuit::new();
        ckt.add_voltage_source(1, 0, 10.0);
        ckt.add_resistor(1, 2, 1_000.0);
        ckt.add_resistor(2, 0, 2_000.0);
        ckt.add_resistor(1, 3, 500.0);
        ckt.add_resistor(3, 0, 1_000.0);
        ckt.add_resistor(2, 3, 700.0); // detector
        let sol = ckt.solve().unwrap();
        assert!((sol.voltage(2) - sol.voltage(3)).abs() < 1e-9);
    }

    #[test]
    fn vccs_inverting_amplifier() {
        // Small-signal CS stage: vin at node 1, VCCS gm from drain(2) to
        // ground controlled by (1,0), RD from 2 to ground.
        // vout = -gm RD vin.
        let gm = 0.004;
        let rd = 5_000.0;
        let mut ckt = Circuit::new();
        ckt.add_voltage_source(1, 0, 1.0); // 1V test input
        ckt.add_vccs(2, 0, 1, 0, gm); // current gm*vgs leaves node 2
        ckt.add_resistor(2, 0, rd);
        let sol = ckt.solve().unwrap();
        assert!(
            (sol.voltage(2) + gm * rd).abs() < 1e-9,
            "{}",
            sol.voltage(2)
        );
    }

    #[test]
    fn floating_node_is_singular() {
        let mut ckt = Circuit::new();
        ckt.add_resistor(1, 2, 1_000.0); // nothing ties 1 or 2 to ground
        assert_eq!(ckt.solve().unwrap_err(), SolveError::Singular);
    }

    #[test]
    fn negative_resistance_rejected() {
        let mut ckt = Circuit::new();
        ckt.add_resistor(1, 0, -5.0);
        assert!(matches!(ckt.solve(), Err(SolveError::BadResistance { .. })));
    }

    #[test]
    fn equivalent_resistance_of_series_parallel() {
        // 1k + (2k || 2k) to ground = 2k
        let mut ckt = Circuit::new();
        ckt.add_resistor(1, 2, 1_000.0);
        ckt.add_resistor(2, 0, 2_000.0);
        ckt.add_resistor(2, 0, 2_000.0);
        let r = equivalent_resistance(&ckt, 1).unwrap();
        assert!((r - 2_000.0).abs() < 1e-6);
    }

    #[test]
    fn paper_fig3_mathvista_style_ladder() {
        // The MathVista sample in the paper's Fig. 3: Vs=5V, R1=1k in
        // series, then R2=2.2k, R3=2.2k, R4=1.5k, RL=4.7k. One standard
        // reading: R1 series with [R2 || (R3 + R4 || RL)], RL across R4.
        let mut ckt = Circuit::new();
        ckt.add_voltage_source(1, 0, 5.0);
        ckt.add_resistor(1, 2, 1_000.0);
        ckt.add_resistor(2, 0, 2_200.0);
        ckt.add_resistor(2, 3, 2_200.0);
        ckt.add_resistor(3, 0, 1_500.0);
        ckt.add_resistor(3, 0, 4_700.0);
        let sol = ckt.solve().unwrap();
        let v_rl = sol.voltage(3);
        // sanity: KVL bounds and hand-computed value ≈ 0.80 V
        assert!(v_rl > 0.0 && v_rl < 5.0);
        let r4_rl = 1.0 / (1.0 / 1_500.0 + 1.0 / 4_700.0);
        let branch = 2_200.0 + r4_rl;
        let mid = 1.0 / (1.0 / 2_200.0 + 1.0 / branch);
        let v2 = 5.0 * mid / (1_000.0 + mid);
        let expect = v2 * r4_rl / branch;
        assert!((v_rl - expect).abs() < 1e-9);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn divider_solution_satisfies_kcl(
                r1 in 10.0f64..1e6,
                r2 in 10.0f64..1e6,
                v in 0.1f64..100.0,
            ) {
                let mut ckt = Circuit::new();
                let src = ckt.add_voltage_source(1, 0, v);
                ckt.add_resistor(1, 2, r1);
                ckt.add_resistor(2, 0, r2);
                let sol = ckt.solve().unwrap();
                let i1 = (sol.voltage(1) - sol.voltage(2)) / r1;
                let i2 = sol.voltage(2) / r2;
                prop_assert!((i1 - i2).abs() < 1e-9 * (1.0 + i1.abs()));
                prop_assert!((sol.source_current(src) - i1).abs() < 1e-9 * (1.0 + i1.abs()));
            }

            #[test]
            fn superposition_holds(
                v in 0.5f64..10.0,
                i in 1e-4f64..1e-2,
            ) {
                // node 2 voltage from both sources equals the sum of each
                // source acting alone (linearity).
                let build = |volts: f64, amps: f64| {
                    let mut ckt = Circuit::new();
                    ckt.add_voltage_source(1, 0, volts);
                    ckt.add_resistor(1, 2, 1_000.0);
                    ckt.add_resistor(2, 0, 2_200.0);
                    ckt.add_current_source(0, 2, amps);
                    ckt.solve().unwrap().voltage(2)
                };
                let both = build(v, i);
                let only_v = build(v, 0.0);
                let only_i = build(0.0, i);
                prop_assert!((both - only_v - only_i).abs() < 1e-9 * (1.0 + both.abs()));
            }
        }
    }
}

//! Negative-feedback analysis: loop gain, closed-loop gain,
//! desensitization and the effect of feedback on bandwidth.

use serde::{Deserialize, Serialize};

use crate::tf::TransferFunction;

/// An ideal negative-feedback loop: forward gain `a`, feedback factor `β`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackLoop {
    /// Open-loop (forward) gain.
    pub a: f64,
    /// Feedback factor (fraction of output fed back).
    pub beta: f64,
}

impl FeedbackLoop {
    /// Creates a loop.
    pub fn new(a: f64, beta: f64) -> Self {
        FeedbackLoop { a, beta }
    }

    /// Loop gain `T = a·β`.
    pub fn loop_gain(&self) -> f64 {
        self.a * self.beta
    }

    /// Closed-loop gain `A = a / (1 + a·β)`.
    pub fn closed_loop_gain(&self) -> f64 {
        self.a / (1.0 + self.loop_gain())
    }

    /// The ideal (infinite-loop-gain) closed-loop gain `1/β`.
    pub fn ideal_gain(&self) -> f64 {
        1.0 / self.beta
    }

    /// Amount of gain desensitization `1 + T`: a fractional change `δ` in
    /// the forward gain produces only `δ/(1+T)` change at the output.
    pub fn desensitivity(&self) -> f64 {
        1.0 + self.loop_gain()
    }

    /// Fractional closed-loop gain error relative to the ideal `1/β`.
    pub fn gain_error(&self) -> f64 {
        (self.ideal_gain() - self.closed_loop_gain()) / self.ideal_gain()
    }
}

/// Closes a resistive feedback loop around a single-pole forward
/// amplifier, returning the closed-loop transfer function
/// `A(s) = a(s) / (1 + β·a(s))`. The closed-loop bandwidth extends by
/// `1 + T0` — the classic gain-bandwidth trade.
pub fn close_loop(forward: &TransferFunction, beta: f64) -> TransferFunction {
    // A = N/D closed = N / (D + beta*N)
    let num = forward.numerator().clone();
    let den = forward
        .denominator()
        .clone()
        .mul(&crate::poly::Poly::constant(1.0));
    let new_den = add_polys(&den, &num.scale(beta));
    TransferFunction::new(num, new_den).expect("denominator nonzero for beta >= 0")
}

fn add_polys(a: &crate::poly::Poly, b: &crate::poly::Poly) -> crate::poly::Poly {
    let n = a.coeffs().len().max(b.coeffs().len());
    let mut out = vec![0.0; n];
    for (i, &c) in a.coeffs().iter().enumerate() {
        out[i] += c;
    }
    for (i, &c) in b.coeffs().iter().enumerate() {
        out[i] += c;
    }
    crate::poly::Poly::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_approaches_ideal() {
        let lp = FeedbackLoop::new(10_000.0, 0.01);
        assert!((lp.ideal_gain() - 100.0).abs() < 1e-12);
        let a = lp.closed_loop_gain();
        assert!(a < 100.0 && a > 99.0, "{a}");
        assert!(lp.gain_error() < 0.01);
    }

    #[test]
    fn desensitivity_is_one_plus_t() {
        let lp = FeedbackLoop::new(1_000.0, 0.1);
        assert!((lp.desensitivity() - 101.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_extension() {
        let a0 = 1e4;
        let wp = 1e3;
        let fwd = TransferFunction::single_pole(a0, wp);
        let beta = 0.01;
        let closed = close_loop(&fwd, beta);
        let t0 = a0 * beta;
        // closed-loop DC gain a0/(1+T)
        assert!((closed.dc_gain() - a0 / (1.0 + t0)).abs() / closed.dc_gain() < 1e-9);
        // bandwidth extends by (1+T)
        let bw = closed.bandwidth_3db().unwrap();
        assert!(
            (bw / (wp * (1.0 + t0)) - 1.0).abs() < 0.02,
            "bw {bw}, expected {}",
            wp * (1.0 + t0)
        );
    }

    #[test]
    fn gain_bandwidth_product_preserved_under_feedback() {
        let fwd = TransferFunction::single_pole(1e5, 1e2);
        for beta in [1e-4, 1e-3, 1e-2] {
            let closed = close_loop(&fwd, beta);
            let gbw_open = fwd.dc_gain() * fwd.bandwidth_3db().unwrap();
            let gbw_closed = closed.dc_gain() * closed.bandwidth_3db().unwrap();
            assert!(
                (gbw_closed / gbw_open - 1.0).abs() < 0.05,
                "beta {beta}: {gbw_closed} vs {gbw_open}"
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn closed_loop_gain_below_both_bounds(
                a in 10.0f64..1e6,
                beta in 1e-4f64..1.0,
            ) {
                let lp = FeedbackLoop::new(a, beta);
                let g = lp.closed_loop_gain();
                prop_assert!(g <= a);
                prop_assert!(g <= lp.ideal_gain() + 1e-12);
                prop_assert!(g > 0.0);
            }
        }
    }
}

//! Data-converter facts: flash/SAR/pipeline architectures and
//! quantization metrics. ChipVQA's analog set includes FLASH, SAR and
//! pipeline-residue questions; the formulas here provide their golds.

use serde::{Deserialize, Serialize};

/// ADC architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdcKind {
    /// Fully parallel (flash).
    Flash,
    /// Successive approximation.
    Sar,
    /// Pipelined with per-stage residue amplification.
    Pipeline {
        /// Resolved bits per stage.
        bits_per_stage: u32,
    },
}

/// An ADC with a resolution and full-scale range.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adc {
    /// Architecture.
    pub kind: AdcKind,
    /// Resolution in bits.
    pub bits: u32,
    /// Full-scale input range in volts.
    pub full_scale: f64,
}

impl Adc {
    /// Creates an ADC description.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 24` and `full_scale > 0`.
    pub fn new(kind: AdcKind, bits: u32, full_scale: f64) -> Self {
        assert!((1..=24).contains(&bits), "resolution out of range");
        assert!(full_scale > 0.0, "full scale must be positive");
        Adc {
            kind,
            bits,
            full_scale,
        }
    }

    /// Number of comparators the architecture needs.
    pub fn comparator_count(&self) -> u64 {
        match self.kind {
            AdcKind::Flash => (1u64 << self.bits) - 1,
            AdcKind::Sar => 1,
            AdcKind::Pipeline { bits_per_stage } => {
                // (2^b - 1) comparators per stage × number of stages
                let stages = self.bits.div_ceil(bits_per_stage);
                u64::from(stages) * ((1u64 << bits_per_stage) - 1)
            }
        }
    }

    /// Conversion latency in clock cycles (to first valid output).
    pub fn conversion_cycles(&self) -> u32 {
        match self.kind {
            AdcKind::Flash => 1,
            AdcKind::Sar => self.bits,
            AdcKind::Pipeline { bits_per_stage } => self.bits.div_ceil(bits_per_stage),
        }
    }

    /// One LSB in volts.
    pub fn lsb(&self) -> f64 {
        self.full_scale / f64::from(1u32 << self.bits.min(31))
    }

    /// Ideal signal-to-quantization-noise ratio in dB
    /// (`6.02·N + 1.76`).
    pub fn sqnr_db(&self) -> f64 {
        6.02 * f64::from(self.bits) + 1.76
    }

    /// Digital output code for an input voltage (clamped to range).
    pub fn quantize(&self, vin: f64) -> u64 {
        let max_code = (1u64 << self.bits) - 1;
        if vin <= 0.0 {
            return 0;
        }
        let code = (vin / self.lsb()).floor() as u64;
        code.min(max_code)
    }

    /// Residue voltage a pipeline stage passes on:
    /// `2^b · (vin − code·LSB_stage)` for a `b`-bit stage.
    pub fn pipeline_residue(&self, vin: f64) -> Option<f64> {
        let AdcKind::Pipeline { bits_per_stage } = self.kind else {
            return None;
        };
        let stage_lsb = self.full_scale / f64::from(1u32 << bits_per_stage);
        let code = (vin / stage_lsb)
            .floor()
            .clamp(0.0, f64::from((1u32 << bits_per_stage) - 1));
        Some(f64::from(1u32 << bits_per_stage) * (vin - code * stage_lsb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_comparator_count_exponential() {
        let adc = Adc::new(AdcKind::Flash, 8, 1.0);
        assert_eq!(adc.comparator_count(), 255);
        assert_eq!(adc.conversion_cycles(), 1);
    }

    #[test]
    fn sar_cycles_linear() {
        let adc = Adc::new(AdcKind::Sar, 12, 2.0);
        assert_eq!(adc.conversion_cycles(), 12);
        assert_eq!(adc.comparator_count(), 1);
    }

    #[test]
    fn pipeline_stage_math() {
        let adc = Adc::new(AdcKind::Pipeline { bits_per_stage: 2 }, 10, 2.0);
        assert_eq!(adc.conversion_cycles(), 5);
        assert_eq!(adc.comparator_count(), 15);
    }

    #[test]
    fn lsb_and_sqnr() {
        let adc = Adc::new(AdcKind::Sar, 10, 1.024);
        assert!((adc.lsb() - 0.001).abs() < 1e-12);
        assert!((adc.sqnr_db() - 61.96).abs() < 0.01);
    }

    #[test]
    fn quantize_clamps() {
        let adc = Adc::new(AdcKind::Flash, 4, 1.6);
        assert_eq!(adc.quantize(-1.0), 0);
        assert_eq!(adc.quantize(0.25), 2); // 0.25/0.1 = 2.5 -> 2
        assert_eq!(adc.quantize(100.0), 15);
    }

    #[test]
    fn residue_stays_in_range() {
        let adc = Adc::new(AdcKind::Pipeline { bits_per_stage: 1 }, 8, 1.0);
        for vin in [0.1, 0.3, 0.49, 0.51, 0.9] {
            let r = adc.pipeline_residue(vin).unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&r), "vin {vin} residue {r}");
        }
        assert!(Adc::new(AdcKind::Sar, 8, 1.0)
            .pipeline_residue(0.5)
            .is_none());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn quantization_error_below_one_lsb(vin in 0.0f64..1.0) {
                let adc = Adc::new(AdcKind::Sar, 8, 1.0);
                let code = adc.quantize(vin);
                let reconstructed = code as f64 * adc.lsb();
                prop_assert!(vin - reconstructed < adc.lsb() + 1e-12);
                prop_assert!(vin - reconstructed >= -1e-12);
            }
        }
    }
}

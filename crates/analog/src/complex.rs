//! Minimal complex arithmetic (the reproduction avoids external numeric
//! crates, so `a + bi` lives here).

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Builds from polar form.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in radians, in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude (cheaper than `abs()^2`).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}j", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}j", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
        let w = z / z;
        assert!((w - Complex::ONE).abs() < 1e-12);
        assert!((Complex::I * Complex::I + Complex::ONE).abs() < 1e-12);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn display_signs() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1.0000+2.0000j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1.0000-2.0000j");
    }
}

//! MOSFET small-signal parameters and canonical amplifier-stage analyses.
//!
//! The closed-form gain/resistance formulas here are the golden answers of
//! many Analog Design questions; each is cross-checked in tests against a
//! from-scratch [MNA](crate::mna) solve of the same linearised circuit, so
//! the "textbook" formulas and the numeric solver validate each other.

use serde::{Deserialize, Serialize};

use crate::mna::Circuit;

/// Small-signal MOSFET operating-point parameters (square-law model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    /// Transconductance `gm` in siemens.
    pub gm: f64,
    /// Output resistance `ro` in ohms (`1/(λ·Id)`).
    pub ro: f64,
}

impl Mosfet {
    /// Derives small-signal parameters from a square-law bias point.
    ///
    /// `kn` is `µCox·W/L` in A/V², `vov` the overdrive voltage, `lambda`
    /// the channel-length modulation coefficient.
    ///
    /// # Panics
    ///
    /// Panics unless `kn`, `vov` are positive and `lambda` is
    /// non-negative.
    pub fn from_bias(kn: f64, vov: f64, lambda: f64) -> Self {
        assert!(kn > 0.0 && vov > 0.0 && lambda >= 0.0, "invalid bias");
        let id = 0.5 * kn * vov * vov;
        Mosfet {
            gm: kn * vov,
            ro: if lambda == 0.0 {
                f64::INFINITY
            } else {
                1.0 / (lambda * id)
            },
        }
    }

    /// Drain current implied by `gm` and overdrive (`Id = gm·Vov/2`).
    pub fn drain_current(&self, vov: f64) -> f64 {
        self.gm * vov / 2.0
    }

    /// Intrinsic gain `gm·ro`.
    pub fn intrinsic_gain(&self) -> f64 {
        self.gm * self.ro
    }
}

/// Parallel combination of two resistances (tolerates infinities).
pub fn parallel(a: f64, b: f64) -> f64 {
    if a.is_infinite() {
        return b;
    }
    if b.is_infinite() {
        return a;
    }
    a * b / (a + b)
}

/// Common-source amplifier small-signal voltage gain
/// `Av = -gm · (RD ∥ ro)`.
pub fn common_source_gain(m: Mosfet, rd: f64) -> f64 {
    -m.gm * parallel(rd, m.ro)
}

/// Common-source stage with source degeneration `RS`:
/// `Av ≈ -gm(RD∥ro) / (1 + gm·RS)` (ro ≫ degeneration approximation
/// refined with the exact two-node formula when `ro` is finite).
pub fn degenerated_cs_gain(m: Mosfet, rd: f64, rs: f64) -> f64 {
    if m.ro.is_infinite() {
        return -m.gm * rd / (1.0 + m.gm * rs);
    }
    // Exact small-signal result for finite ro:
    // Av = -gm ro RD / (RD + ro + RS (1 + gm ro))
    -m.gm * m.ro * rd / (rd + m.ro + rs * (1.0 + m.gm * m.ro))
}

/// Source-follower (common-drain) gain
/// `Av = gm(RS∥ro) / (1 + gm(RS∥ro))`.
pub fn source_follower_gain(m: Mosfet, rs: f64) -> f64 {
    let r = parallel(rs, m.ro);
    m.gm * r / (1.0 + m.gm * r)
}

/// Common-gate stage gain `Av = gm(RD∥ro)` (non-inverting, ro ≫ source
/// resistance approximation).
pub fn common_gate_gain(m: Mosfet, rd: f64) -> f64 {
    m.gm * parallel(rd, m.ro)
}

/// Resistance looking into the source of a MOSFET whose drain sees `RD`:
/// `Rin = (RD + ro) / (1 + gm·ro)` (≈ 1/gm when ro is large).
pub fn looking_into_source(m: Mosfet, rd: f64) -> f64 {
    if m.ro.is_infinite() {
        return 1.0 / m.gm;
    }
    (rd + m.ro) / (1.0 + m.gm * m.ro)
}

/// Resistance looking into the drain with source degeneration `RS`:
/// `Rout = ro (1 + gm·RS) + RS` — the cascode-boost formula.
pub fn looking_into_drain(m: Mosfet, rs: f64) -> f64 {
    if m.ro.is_infinite() {
        return f64::INFINITY;
    }
    m.ro * (1.0 + m.gm * rs) + rs
}

/// Builds the exact small-signal MNA circuit of a degenerated
/// common-source stage (vin node 1, drain node 2, source node 3, output at
/// the drain), useful for cross-checking the formulas and for rendering.
pub fn degenerated_cs_circuit(m: Mosfet, rd: f64, rs: f64) -> Circuit {
    let mut ckt = Circuit::new();
    ckt.add_voltage_source(1, 0, 1.0); // unit test input => V(2) = gain
                                       // VCCS: id = gm (vg - vs), flowing drain -> source
    ckt.add_vccs(2, 3, 1, 3, m.gm);
    if m.ro.is_finite() {
        ckt.add_resistor(2, 3, m.ro);
    }
    ckt.add_resistor(2, 0, rd);
    if rs > 0.0 {
        ckt.add_resistor(3, 0, rs);
    } else {
        // ideal grounded source: a tiny resistance keeps the matrix
        // well-posed without perturbing the result measurably
        ckt.add_resistor(3, 0, 1e-6);
    }
    ckt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Mosfet {
        Mosfet { gm: 2e-3, ro: 50e3 }
    }

    #[test]
    fn bias_derivation() {
        let dev = Mosfet::from_bias(4e-3, 0.25, 0.05);
        assert!((dev.gm - 1e-3).abs() < 1e-12);
        // Id = 0.5*4e-3*0.0625 = 125 µA, ro = 1/(0.05*125µ) = 160 kΩ
        assert!((dev.ro - 160e3).abs() / 160e3 < 1e-9);
        assert!((dev.drain_current(0.25) - 125e-6).abs() < 1e-12);
    }

    #[test]
    fn cs_gain_formula_vs_mna() {
        let dev = m();
        let rd = 10e3;
        let formula = common_source_gain(dev, rd);
        let ckt = degenerated_cs_circuit(dev, rd, 0.0);
        let sol = ckt.solve().unwrap();
        assert!(
            (sol.voltage(2) - formula).abs() < 1e-3 * formula.abs(),
            "mna {} vs formula {}",
            sol.voltage(2),
            formula
        );
    }

    #[test]
    fn degenerated_gain_formula_vs_mna() {
        let dev = m();
        let (rd, rs) = (10e3, 1e3);
        let formula = degenerated_cs_gain(dev, rd, rs);
        let sol = degenerated_cs_circuit(dev, rd, rs).solve().unwrap();
        assert!(
            (sol.voltage(2) - formula).abs() < 1e-3 * formula.abs(),
            "mna {} vs formula {}",
            sol.voltage(2),
            formula
        );
        // degeneration reduces gain magnitude
        assert!(formula.abs() < common_source_gain(dev, rd).abs());
    }

    #[test]
    fn follower_gain_below_unity() {
        let g = source_follower_gain(m(), 5e3);
        assert!(g > 0.8 && g < 1.0, "{g}");
    }

    #[test]
    fn common_gate_non_inverting() {
        let g = common_gate_gain(m(), 10e3);
        assert!(g > 0.0);
        assert!((g - common_source_gain(m(), 10e3).abs()).abs() < 1e-12);
    }

    #[test]
    fn impedance_formulas() {
        let dev = m();
        // 1/gm = 500 ohms; with RD=0 and large ro it approaches that
        let rin = looking_into_source(dev, 0.0);
        assert!((rin - 1.0 / dev.gm).abs() / rin < 0.02, "{rin}");
        // cascode boost: Rout ≈ ro(1+gm·RS)
        let rout = looking_into_drain(dev, 1e3);
        assert!(rout > dev.ro * 2.9 && rout < dev.ro * 3.2, "{rout}");
    }

    #[test]
    fn infinite_ro_paths() {
        let ideal = Mosfet {
            gm: 1e-3,
            ro: f64::INFINITY,
        };
        assert!((common_source_gain(ideal, 10e3) + 10.0).abs() < 1e-12);
        assert!(looking_into_drain(ideal, 1e3).is_infinite());
        assert!((looking_into_source(ideal, 5e3) - 1000.0).abs() < 1e-9);
        assert!((parallel(f64::INFINITY, 5.0) - 5.0).abs() < 1e-12);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn formula_and_mna_agree(
                gm_ms in 0.5f64..10.0,
                ro_k in 10.0f64..500.0,
                rd_k in 1.0f64..50.0,
                rs_k in 0.0f64..5.0,
            ) {
                let dev = Mosfet { gm: gm_ms * 1e-3, ro: ro_k * 1e3 };
                let rd = rd_k * 1e3;
                let rs = rs_k * 1e3;
                let formula = degenerated_cs_gain(dev, rd, rs);
                let sol = degenerated_cs_circuit(dev, rd, rs).solve().unwrap();
                let rel = (sol.voltage(2) - formula).abs() / formula.abs().max(1e-9);
                prop_assert!(rel < 5e-3, "mna {} formula {}", sol.voltage(2), formula);
            }
        }
    }
}

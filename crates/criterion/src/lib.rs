//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset this workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`] / [`bench_with_input`],
//! [`BenchmarkId::new`], `criterion_group!` / `criterion_main!`, and
//! [`black_box`]. Measurement is wall-clock with adaptive batching;
//! per-benchmark mean and median sample times are printed.
//!
//! Like real criterion, a bench binary run without `--bench` (as
//! `cargo test` does for `harness = false` bench targets) executes each
//! routine once as a smoke test instead of sampling.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! sampled measurement is additionally **appended** to it as one JSON
//! line `{"label":…,"mean_ns":…,"median_ns":…}` — the machine-readable
//! summary CI jobs commit as `BENCH_*.json` trend points.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sampling: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes --bench; cargo test does not
        let sampling = std::env::args().any(|a| a == "--bench");
        Criterion { sampling }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if self.sampling {
            println!("\n== group: {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        run_one(&id, self.sampling, 100, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Accepted and ignored — the shim has no warm-up phase to tune.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sampling, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.sampling, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier from a bare parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    mode: BenchMode,
    /// Mean time per iteration from the most recent `iter` call.
    last_mean: Option<Duration>,
    last_median: Option<Duration>,
}

enum BenchMode {
    /// One untimed call — used under `cargo test`.
    Smoke,
    /// Timed sampling with this many samples.
    Sample(usize),
}

impl Bencher {
    /// Times `routine`, batching iterations adaptively.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            BenchMode::Smoke => {
                black_box(routine());
            }
            BenchMode::Sample(samples) => {
                // Warm-up and batch sizing: target ~2ms per sample so
                // fast routines are batched and slow ones run once.
                let warm = Instant::now();
                black_box(routine());
                let once = warm.elapsed().max(Duration::from_nanos(1));
                let target = Duration::from_millis(2);
                let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

                let mut times: Vec<Duration> = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    times.push(start.elapsed() / iters as u32);
                }
                times.sort();
                let mean = times.iter().sum::<Duration>() / samples as u32;
                let median = times[samples / 2];
                self.last_mean = Some(mean);
                self.last_median = Some(median);
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sampling: bool, samples: usize, mut f: F) {
    let mut b = Bencher {
        mode: if sampling {
            BenchMode::Sample(samples)
        } else {
            BenchMode::Smoke
        },
        last_mean: None,
        last_median: None,
    };
    f(&mut b);
    if sampling {
        match (b.last_mean, b.last_median) {
            (Some(mean), Some(median)) => {
                println!("{label:<48} mean {:>12?}  median {:>12?}", mean, median);
                export_json_line(label, mean, median);
            }
            _ => println!("{label:<48} (no measurement)"),
        }
    }
}

/// Records a measurement taken outside the [`Bencher`] sampling loop —
/// the escape hatch for *macro* benchmarks (whole-grid evaluations that
/// are far too slow to sample) that must still land in the printed
/// summary and the `$CRITERION_JSON` trend file. The single observed
/// wall time serves as both mean and median.
pub fn export_measurement(label: &str, observed: Duration) {
    println!("{label:<48} mean {observed:>12?}  median {observed:>12?}");
    export_json_line(label, observed, observed);
}

/// Appends one measurement as a JSON line to `$CRITERION_JSON`, when
/// set. Failures are reported but never fail the bench run.
fn export_json_line(label: &str, mean: Duration, median: Duration) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped = label.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!(
        "{{\"label\":\"{escaped}\",\"mean_ns\":{},\"median_ns\":{}}}\n",
        mean.as_nanos(),
        median.as_nanos()
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = appended {
        eprintln!("CRITERION_JSON export to {path} failed: {e}");
    }
}

/// Declares a benchmark group runner (positional form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0;
        let mut b = Bencher {
            mode: BenchMode::Smoke,
            last_mean: None,
            last_median: None,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn sampling_records_stats() {
        let mut b = Bencher {
            mode: BenchMode::Sample(5),
            last_mean: None,
            last_median: None,
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(b.last_mean.is_some());
        assert!(b.last_median.is_some());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

//! Offline, vendored stand-in for [`serde`](https://serde.rs).
//!
//! The real serde could not be fetched (no registry access), so this
//! crate provides the same *spelling* — `serde::Serialize`,
//! `serde::Deserialize`, `#[derive(Serialize, Deserialize)]`,
//! `#[serde(skip)]`, `#[serde(default)]` — over a much smaller core:
//! every serializable type converts to and from a JSON-shaped [`Value`]
//! tree. `serde_json` in this workspace renders that tree to text and
//! parses it back.
//!
//! Representation choices mirror serde's JSON conventions so existing
//! expectations (externally-tagged enums, newtype transparency, maps as
//! objects, skipped fields defaulting on read) keep holding.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with preserved insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X, found Y while reading T"
    pub fn expected(what: &str, got: &Value, ctx: &str) -> DeError {
        DeError(format!("expected {what}, found {} in {ctx}", got.kind()))
    }

    /// Missing object field.
    pub fn missing(field: &str, ctx: &str) -> DeError {
        DeError(format!("missing field `{field}` in {ctx}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts to the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- numbers

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let out = match *v {
                    Value::I64(x) => <$t>::try_from(x).ok(),
                    Value::U64(x) => <$t>::try_from(x).ok(),
                    Value::F64(x) if x.fract() == 0.0 && x.is_finite() => {
                        Some(x as $t)
                    }
                    _ => None,
                };
                out.ok_or_else(|| DeError::expected(stringify!($t), v, "integer"))
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::F64(*self as f64)
                } else {
                    // serde_json serializes non-finite floats as null
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(x) => Ok(x as $t),
                    Value::I64(x) => Ok(x as $t),
                    Value::U64(x) => Ok(x as $t),
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected("number", v, stringify!($t))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

// ------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v, "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v, "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError::expected("single-char string", v, "char")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", v, "unit")),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_arr()
            .ok_or_else(|| DeError::expected("array", v, "Vec"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_arr()
            .ok_or_else(|| DeError::expected("array", v, "fixed array"))?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| DeError("array length mismatch".into()))
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::expected("array", v, "tuple"))?;
                let want = [$($n),+].len();
                if items.len() != want {
                    return Err(DeError(format!(
                        "expected tuple of length {want}, found {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Map keys must render to a JSON object key.
pub trait MapKey: Sized {
    /// Key → object-key string.
    fn to_key(&self) -> String;
    /// Object-key string → key.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! int_key_impl {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError(format!("bad integer key `{s}`")))
            }
        }
    )*};
}

int_key_impl!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Pair keys encode as `"a,b"`. Real serde_json rejects non-string map
/// keys at runtime; encoding them keeps such maps round-trippable here.
/// Sound for integer components, which never contain `,`.
impl<A: MapKey, B: MapKey> MapKey for (A, B) {
    fn to_key(&self) -> String {
        format!("{},{}", self.0.to_key(), self.1.to_key())
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        let (a, b) = s
            .split_once(',')
            .ok_or_else(|| DeError(format!("bad pair key `{s}`")))?;
        Ok((A::from_key(a)?, B::from_key(b)?))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other, "VecDeque")),
        }
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_obj()
            .ok_or_else(|| DeError::expected("object", v, "map"))?;
        fields
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // deterministic output: sort keys
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(fields)
    }
}
impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_obj()
            .ok_or_else(|| DeError::expected("object", v, "map"))?;
        fields
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(i64::from_value(&42u8.to_value()).unwrap(), 42);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn option_and_array() {
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let arr: [String; 2] =
            Deserialize::from_value(&["a".to_string(), "b".to_string()].to_value()).unwrap();
        assert_eq!(arr[1], "b");
    }

    #[test]
    fn big_u64_keeps_precision() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}

//! The human-readable run summary.
//!
//! [`TelemetrySummary`] condenses a [`MetricsSnapshot`] into the table
//! appended to reports: spans ranked by total time (with self time and
//! call counts), counters ranked by value, gauges, and histogram
//! quantiles. Ordering is deterministic (ties break on name), so the
//! rendered table is stable across runs with identical metrics.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;

/// One span path in the summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRow {
    /// Hierarchy path.
    pub path: String,
    /// Completed spans on the path.
    pub count: u64,
    /// Total wall time, ns.
    pub total_ns: u64,
    /// Time not attributed to children, ns.
    pub self_ns: u64,
}

/// One histogram in the summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramRow {
    /// Histogram name.
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Mean observation, ns.
    pub mean_ns: u64,
    /// Median (bucket upper bound), ns.
    pub p50_ns: u64,
    /// 90th percentile (bucket upper bound), ns.
    pub p90_ns: u64,
    /// 99th percentile (bucket upper bound), ns.
    pub p99_ns: u64,
}

/// Deterministic, serialisable digest of one run's telemetry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetrySummary {
    /// Span paths, ranked by total time (descending), ties by path.
    pub spans: Vec<SpanRow>,
    /// Counters, ranked by value (descending), ties by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramRow>,
}

impl TelemetrySummary {
    /// Builds the summary from a merged snapshot.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> Self {
        let mut spans: Vec<SpanRow> = snapshot
            .spans
            .iter()
            .map(|(path, stat)| SpanRow {
                path: path.clone(),
                count: stat.count,
                total_ns: stat.total_ns,
                self_ns: stat.self_ns,
            })
            .collect();
        spans.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.path.cmp(&b.path)));

        let mut counters: Vec<(String, u64)> = snapshot
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        counters.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        let gauges: Vec<(String, f64)> = snapshot
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();

        let histograms: Vec<HistogramRow> = snapshot
            .histograms
            .iter()
            .map(|(name, hist)| HistogramRow {
                name: name.clone(),
                count: hist.count,
                mean_ns: hist.mean(),
                p50_ns: hist.quantile(0.50),
                p90_ns: hist.quantile(0.90),
                p99_ns: hist.quantile(0.99),
            })
            .collect();

        TelemetrySummary {
            spans,
            counters,
            gauges,
            histograms,
        }
    }

    /// Whether there is nothing to show.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }
}

/// Renders nanoseconds with a readable unit (ASCII only).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl fmt::Display for TelemetrySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TELEMETRY SUMMARY")?;
        if self.is_empty() {
            return writeln!(f, "  (no telemetry recorded)");
        }
        if !self.spans.is_empty() {
            writeln!(
                f,
                "  {:<44} {:>8} {:>10} {:>10}",
                "span path", "count", "total", "self"
            )?;
            for row in &self.spans {
                writeln!(
                    f,
                    "  {:<44} {:>8} {:>10} {:>10}",
                    row.path,
                    row.count,
                    fmt_ns(row.total_ns),
                    fmt_ns(row.self_ns)
                )?;
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "  {:<44} {:>8}", "counter", "value")?;
            for (name, value) in &self.counters {
                writeln!(f, "  {name:<44} {value:>8}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "  {:<44} {:>8}", "gauge", "value")?;
            for (name, value) in &self.gauges {
                writeln!(f, "  {name:<44} {value:>8.3}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9}",
                "histogram", "count", "mean", "p50", "p90", "p99"
            )?;
            for row in &self.histograms {
                writeln!(
                    f,
                    "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9}",
                    row.name,
                    row.count,
                    fmt_ns(row.mean_ns),
                    fmt_ns(row.p50_ns),
                    fmt_ns(row.p90_ns),
                    fmt_ns(row.p99_ns)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_summary() -> TelemetrySummary {
        let reg = MetricsRegistry::new();
        reg.counter("cache.hit", 120);
        reg.counter("cache.miss", 22);
        reg.gauge("coverage", 0.97);
        for v in [900u64, 1100, 4000] {
            reg.observe("question_ns", v);
        }
        reg.record_span("run", 5000, 1000);
        reg.record_span("run/shard", 4000, 4000);
        TelemetrySummary::from_snapshot(&reg.snapshot())
    }

    #[test]
    fn ranking_is_deterministic() {
        let s = sample_summary();
        assert_eq!(s.spans[0].path, "run", "largest total first");
        assert_eq!(s.counters[0].0, "cache.hit", "largest counter first");
        assert_eq!(s.histograms.len(), 1);
        assert!(s.histograms[0].p99_ns >= s.histograms[0].p50_ns);
    }

    #[test]
    fn renders_all_sections() {
        let text = sample_summary().to_string();
        assert!(text.contains("TELEMETRY SUMMARY"));
        assert!(text.contains("span path"));
        assert!(text.contains("run/shard"));
        assert!(text.contains("cache.hit"));
        assert!(text.contains("coverage"));
        assert!(text.contains("question_ns"));
    }

    #[test]
    fn empty_summary_says_so() {
        let s = TelemetrySummary::default();
        assert!(s.is_empty());
        assert!(s.to_string().contains("no telemetry recorded"));
    }

    #[test]
    fn serde_roundtrip() {
        let s = sample_summary();
        let json = serde_json::to_string(&s).expect("serializes");
        let back: TelemetrySummary = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, s);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}

//! Sharded counters, gauges and fixed-bucket histograms.
//!
//! Recording goes to one of a small fixed number of shards (thread →
//! shard by hashing the thread id), so executor workers almost never
//! contend on the same mutex; [`MetricsRegistry::snapshot`] merges the
//! shards into deterministic (sorted) maps at scrape time.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

/// Shards in the registry. More than any realistic worker count in this
/// workspace; collisions only cost a little lock contention.
const SHARDS: usize = 16;

/// Histogram buckets: bucket `b` holds values whose bit-length is `b`
/// (i.e. `[2^(b-1), 2^b)` for `b >= 1`; bucket 0 holds exactly 0).
pub const HISTOGRAM_BUCKETS: usize = 65;

fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of histogram bucket `b`, used when reporting
/// quantiles.
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

#[derive(Default)]
struct ShardData {
    counters: HashMap<String, u64>,
    // gauge value tagged with a global write sequence so "last write
    // wins" is well-defined across shards
    gauges: HashMap<String, (u64, f64)>,
    histograms: HashMap<String, HistData>,
    spans: HashMap<String, SpanStat>,
}

#[derive(Clone)]
struct HistData {
    count: u64,
    sum: u64,
    buckets: Vec<u64>,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }
}

/// Aggregate timing of all spans sharing one hierarchy path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpanStat {
    /// Completed spans on this path.
    pub count: u64,
    /// Total wall time across them, ns.
    pub total_ns: u64,
    /// Total time *not* attributed to child spans, ns.
    pub self_ns: u64,
}

/// Merged, deterministic point-in-time view of the registry.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Latest gauge value by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span aggregates by hierarchy path.
    pub spans: BTreeMap<String, SpanStat>,
}

/// One merged histogram.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (see [`bucket_upper_bound`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]` —
    /// a conservative (over-) estimate with power-of-two resolution.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// The sharded metrics store behind a [`Telemetry`](crate::Telemetry)
/// handle.
pub struct MetricsRegistry {
    shards: Vec<Mutex<ShardData>>,
    gauge_seq: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// Poison-tolerant lock: the supervised executor catches injected
/// panics with `catch_unwind`, and a record made after such a panic must
/// still succeed. Every shard mutation is a single map operation, so
/// recovering the guard is sound.
fn shard_lock(shard: &Mutex<ShardData>) -> MutexGuard<'_, ShardData> {
    shard
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(ShardData::default()))
                .collect(),
            gauge_seq: AtomicU64::new(0),
        }
    }

    fn my_shard(&self) -> &Mutex<ShardData> {
        thread_local! {
            static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
        }
        let idx = SHARD.with(|s| {
            let mut idx = s.get();
            if idx == usize::MAX {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                std::thread::current().id().hash(&mut h);
                idx = (h.finish() as usize) % SHARDS;
                s.set(idx);
            }
            idx
        });
        &self.shards[idx]
    }

    /// Adds `delta` to counter `name`.
    pub fn counter(&self, name: &str, delta: u64) {
        let mut shard = shard_lock(self.my_shard());
        match shard.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                shard.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Sets gauge `name` (last write wins, globally sequenced).
    pub fn gauge(&self, name: &str, value: f64) {
        let seq = self.gauge_seq.fetch_add(1, Ordering::Relaxed);
        shard_lock(self.my_shard())
            .gauges
            .insert(name.to_string(), (seq, value));
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        let mut shard = shard_lock(self.my_shard());
        let hist = shard.histograms.entry(name.to_string()).or_default();
        hist.count += 1;
        hist.sum = hist.sum.saturating_add(value);
        hist.buckets[bucket_index(value)] += 1;
    }

    /// Folds one completed span into the per-path aggregate.
    pub fn record_span(&self, path: &str, dur_ns: u64, self_ns: u64) {
        let mut shard = shard_lock(self.my_shard());
        let stat = shard.spans.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(dur_ns);
        stat.self_ns = stat.self_ns.saturating_add(self_ns);
    }

    /// Merges every shard into a deterministic snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        let mut gauge_seqs: BTreeMap<String, u64> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard_lock(shard);
            for (name, &v) in &shard.counters {
                *out.counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, &(seq, value)) in &shard.gauges {
                let newest = gauge_seqs.get(name).is_none_or(|&s| seq >= s);
                if newest {
                    gauge_seqs.insert(name.clone(), seq);
                    out.gauges.insert(name.clone(), value);
                }
            }
            for (name, hist) in &shard.histograms {
                let merged =
                    out.histograms
                        .entry(name.clone())
                        .or_insert_with(|| HistogramSnapshot {
                            count: 0,
                            sum: 0,
                            buckets: vec![0; HISTOGRAM_BUCKETS],
                        });
                merged.count += hist.count;
                merged.sum = merged.sum.saturating_add(hist.sum);
                for (b, &n) in hist.buckets.iter().enumerate() {
                    merged.buckets[b] += n;
                }
            }
            for (path, stat) in &shard.spans {
                let merged = out.spans.entry(path.clone()).or_default();
                merged.count += stat.count;
                merged.total_ns = merged.total_ns.saturating_add(stat.total_ns);
                merged.self_ns = merged.self_ns.saturating_add(stat.self_ns);
            }
        }
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_threads() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        reg.counter("hits", 1);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counters["hits"], 400);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let reg = MetricsRegistry::new();
        reg.gauge("coverage", 0.5);
        reg.gauge("coverage", 0.9);
        assert_eq!(reg.snapshot().gauges["coverage"], 0.9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = MetricsRegistry::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            reg.observe("lat", v);
        }
        let snap = reg.snapshot();
        let hist = &snap.histograms["lat"];
        assert_eq!(hist.count, 7);
        assert_eq!(hist.sum, 1_001_106);
        // p50 falls in the bucket containing 3 (values 0,1,2,3 below it)
        assert!(hist.quantile(0.5) >= 3);
        assert!(hist.quantile(1.0) >= 1_000_000);
        assert_eq!(hist.quantile(0.0), 0);
        assert!(hist.mean() > 0);
    }

    #[test]
    fn bucket_bounds_are_monotone() {
        let mut prev = 0;
        for b in 0..HISTOGRAM_BUCKETS {
            let upper = bucket_upper_bound(b);
            assert!(upper >= prev);
            prev = upper;
        }
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(4), 15);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn span_aggregates_merge() {
        let reg = MetricsRegistry::new();
        reg.record_span("run/shard", 100, 40);
        reg.record_span("run/shard", 300, 100);
        let snap = reg.snapshot();
        assert_eq!(
            snap.spans["run/shard"],
            SpanStat {
                count: 2,
                total_ns: 400,
                self_ns: 140
            }
        );
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("a", 3);
        reg.gauge("g", 1.25);
        reg.observe("h", 7);
        reg.record_span("p", 10, 10);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, snap);
    }
}

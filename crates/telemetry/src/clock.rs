//! The time seam: telemetry never reads wall-clock time directly.
//!
//! Every timestamp flows through a [`Clock`] owned by the
//! [`Telemetry`](crate::Telemetry) handle. Production uses
//! [`MonotonicClock`]; tests use [`MockClock`], whose "time" is a pure
//! function of how many observations were made — which is what makes
//! trace files byte-stable under fixed seeds (see the crate docs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Source of monotonically non-decreasing nanosecond timestamps.
///
/// Implementations must be cheap (called twice per span) and
/// thread-safe (workers record concurrently).
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// Real time: nanoseconds since the clock was constructed.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        let ns = self.origin.elapsed().as_nanos();
        u64::try_from(ns).unwrap_or(u64::MAX)
    }
}

/// Deterministic test clock: every observation returns the previous
/// tick count × `tick_ns`, then advances by one tick.
///
/// Because "time" depends only on the *number* of observations, two
/// runs that make the same sequence of telemetry calls see identical
/// timestamps — the property the byte-stable-trace tests rely on.
/// Clones share state (an [`Arc`]), so a test can keep a handle for
/// inspection while the telemetry pipeline owns another.
#[derive(Debug, Clone)]
pub struct MockClock {
    ticks: Arc<AtomicU64>,
    tick_ns: u64,
}

impl MockClock {
    /// A clock starting at 0 that advances `tick_ns` per observation.
    pub fn new(tick_ns: u64) -> Self {
        MockClock {
            ticks: Arc::new(AtomicU64::new(0)),
            tick_ns,
        }
    }

    /// How many observations have been made.
    pub fn observations(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }

    /// Advances the clock by `n` extra ticks without observing it.
    pub fn advance(&self, n: u64) {
        self.ticks.fetch_add(n, Ordering::SeqCst);
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::SeqCst) * self.tick_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_is_a_pure_function_of_observation_count() {
        let clock = MockClock::new(100);
        assert_eq!(clock.now_ns(), 0);
        assert_eq!(clock.now_ns(), 100);
        assert_eq!(clock.now_ns(), 200);
        assert_eq!(clock.observations(), 3);

        let again = MockClock::new(100);
        assert_eq!(again.now_ns(), 0);
        assert_eq!(again.now_ns(), 100);
    }

    #[test]
    fn mock_clock_clones_share_state() {
        let a = MockClock::new(10);
        let b = a.clone();
        assert_eq!(a.now_ns(), 0);
        assert_eq!(b.now_ns(), 10);
        b.advance(5);
        assert_eq!(a.now_ns(), 70);
    }
}

//! Deterministic observability for the ChipVQA harness.
//!
//! Three pillars behind one cheap [`Telemetry`] handle:
//!
//! * **Spans** — RAII guards ([`Span::enter`]) that time hierarchical
//!   regions; nesting is tracked per thread, and a parent's *self time*
//!   excludes its children so the summary shows where time actually
//!   goes.
//! * **Metrics** — counters, gauges and power-of-two-bucket histograms
//!   in a sharded [`MetricsRegistry`]: recording locks a per-thread
//!   shard, never a global, so the work-stealing executor's workers do
//!   not contend; [`Telemetry::snapshot`] merges shards
//!   deterministically at scrape time.
//! * **Sinks** — completed spans and structured events fan out as
//!   [`TraceRecord`]s to any number of [`TraceSink`]s: [`JsonlSink`]
//!   exports the trace as JSON lines, [`MemorySink`] backs test
//!   assertions, and [`TelemetrySummary`] renders the human table
//!   appended to reports.
//!
//! # Determinism
//!
//! Timestamps come from a pluggable [`Clock`]. With [`MockClock`]
//! (time = observation count × tick) and a single worker, a seeded run
//! makes the same telemetry calls in the same order every time, so the
//! exported JSONL trace is **byte-identical** across reruns — the same
//! guarantee the eval stack gives for reports, extended to traces.
//!
//! # Cost when disabled
//!
//! [`Telemetry::disabled`] is the default everywhere in the workspace.
//! Every operation on a disabled handle is a single `Option` check — no
//! clock read, no allocation, no lock — keeping the uninstrumented hot
//! path within benchmark noise (enforced by the `telemetry` bench and
//! the `telemetry_overhead` CI gate).
//!
//! # Example
//!
//! ```
//! use chipvqa_telemetry::{kv, MemorySink, MockClock, Span, Telemetry};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::new());
//! let tele = Telemetry::builder()
//!     .clock(MockClock::new(100))
//!     .sink(sink.clone())
//!     .build();
//! {
//!     let _span = Span::enter(&tele, "inference", vec![kv("model", "GPT4o")]);
//!     tele.counter("cache.miss", 1);
//! }
//! assert_eq!(sink.named("inference").len(), 1);
//! assert_eq!(tele.snapshot().counters["cache.miss"], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod summary;

use std::sync::Arc;

pub use clock::{Clock, MockClock, MonotonicClock};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, SpanStat};
pub use sink::{kv, parse_jsonl, FnSink, JsonlSink, KeyValues, MemorySink, TraceRecord, TraceSink};
pub use span::{Span, Timer};
pub use summary::{HistogramRow, SpanRow, TelemetrySummary};

/// Shared state behind an enabled [`Telemetry`] handle.
pub(crate) struct Inner {
    pub(crate) clock: Box<dyn Clock>,
    pub(crate) sinks: Vec<Arc<dyn TraceSink>>,
    pub(crate) registry: MetricsRegistry,
}

/// The observability handle threaded through the eval stack.
///
/// Cloning is cheap (an `Arc` bump) and clones share every sink,
/// metric and the clock, so an executor, its supervisor and its cache
/// instrumentation all feed one place. The disabled handle
/// ([`Telemetry::disabled`]) is free to clone and free to call.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// The no-op handle: every operation is a single branch.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle with real time, metrics only (no sinks).
    pub fn recording() -> Self {
        Telemetry::builder().build()
    }

    /// Starts configuring an enabled handle.
    pub fn builder() -> TelemetryBuilder {
        TelemetryBuilder {
            clock: Box::new(MonotonicClock::new()),
            sinks: Vec::new(),
        }
    }

    /// Whether this handle records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub(crate) fn inner(&self) -> Option<&Inner> {
        self.inner.as_deref()
    }

    /// Adds `delta` to counter `name`.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(inner) = self.inner() {
            inner.registry.counter(name, delta);
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = self.inner() {
            inner.registry.gauge(name, value);
        }
    }

    /// Records `ns` into histogram `name`.
    pub fn observe_ns(&self, name: &str, ns: u64) {
        if let Some(inner) = self.inner() {
            inner.registry.observe(name, ns);
        }
    }

    /// Emits a one-shot structured event to every sink, timestamped by
    /// the handle's clock.
    ///
    /// Callers with non-trivial `kvs` should guard construction with
    /// [`enabled`](Telemetry::enabled) to keep the disabled path
    /// allocation-free.
    pub fn event(&self, name: &str, kvs: KeyValues) {
        let Some(inner) = self.inner() else { return };
        let record = TraceRecord::Event {
            name: name.to_string(),
            at_ns: inner.clock.now_ns(),
            kvs,
        };
        for sink in &inner.sinks {
            sink.record(&record);
        }
    }

    /// Enters an unannotated span (see [`Span::enter`]).
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span::enter(self, name, Vec::new())
    }

    /// Enters an annotated span (see [`Span::enter`]).
    pub fn span_kv(&self, name: &'static str, kvs: KeyValues) -> Span<'_> {
        Span::enter(self, name, kvs)
    }

    /// Starts a histogram timer: the elapsed time lands in histogram
    /// `name` when the guard drops.
    pub fn timer(&self, name: &'static str) -> Timer<'_> {
        Timer::start(self, name)
    }

    /// Merged point-in-time view of all metrics (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match self.inner() {
            Some(inner) => inner.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// The human summary of everything recorded so far.
    pub fn summary(&self) -> TelemetrySummary {
        TelemetrySummary::from_snapshot(&self.snapshot())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Handles compare by identity: two enabled handles are equal iff they
/// share state; all disabled handles are equal. This keeps `PartialEq`
/// derivable on structs that carry a `Telemetry`.
impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// Configures an enabled [`Telemetry`] handle.
pub struct TelemetryBuilder {
    clock: Box<dyn Clock>,
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TelemetryBuilder {
    /// Replaces the clock (default: [`MonotonicClock`]).
    pub fn clock(mut self, clock: impl Clock + 'static) -> Self {
        self.clock = Box::new(clock);
        self
    }

    /// Attaches a sink; may be called repeatedly.
    pub fn sink(mut self, sink: Arc<impl TraceSink + 'static>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Builds the enabled handle.
    pub fn build(self) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                clock: self.clock,
                sinks: self.sinks,
                registry: MetricsRegistry::new(),
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_cheap() {
        let tele = Telemetry::disabled();
        assert!(!tele.enabled());
        tele.counter("x", 1);
        tele.gauge("y", 2.0);
        tele.observe_ns("z", 3);
        tele.event("e", Vec::new());
        assert_eq!(tele.snapshot(), MetricsSnapshot::default());
        assert!(tele.summary().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let tele = Telemetry::recording();
        let other = tele.clone();
        other.counter("shared", 2);
        tele.counter("shared", 3);
        assert_eq!(tele.snapshot().counters["shared"], 5);
        assert_eq!(tele, other);
        assert_ne!(tele, Telemetry::recording(), "separate registries differ");
        assert_eq!(Telemetry::disabled(), Telemetry::disabled());
        assert_ne!(tele, Telemetry::disabled());
    }

    #[test]
    fn events_reach_every_sink() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let tele = Telemetry::builder()
            .clock(MockClock::new(1))
            .sink(a.clone())
            .sink(b.clone())
            .build();
        tele.event("run.degraded", vec![kv("model", "Fuyu-8B")]);
        assert_eq!(a.named("run.degraded").len(), 1);
        assert_eq!(b.named("run.degraded").len(), 1);
        assert_eq!(a.records()[0].get("model"), Some("Fuyu-8B"));
    }

    #[test]
    fn summary_reflects_recorded_metrics() {
        let tele = Telemetry::builder().clock(MockClock::new(5)).build();
        {
            let _s = tele.span("inference");
        }
        tele.counter("cache.hit", 7);
        {
            let _t = tele.timer("question_ns");
        }
        let summary = tele.summary();
        assert_eq!(summary.spans.len(), 1);
        assert_eq!(summary.spans[0].path, "inference");
        assert_eq!(summary.counters, vec![("cache.hit".to_string(), 7)]);
        assert_eq!(summary.histograms[0].count, 1);
    }

    #[test]
    fn debug_formats_without_leaking_internals() {
        assert_eq!(
            format!("{:?}", Telemetry::disabled()),
            "Telemetry { enabled: false }"
        );
        assert_eq!(
            format!("{:?}", Telemetry::recording()),
            "Telemetry { enabled: true }"
        );
    }
}

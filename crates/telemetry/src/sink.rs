//! Trace records and where they go.
//!
//! Completed spans and one-shot events become [`TraceRecord`]s and are
//! fanned out to every attached [`TraceSink`]. Two sinks ship with the
//! crate: [`MemorySink`] for test assertions and [`JsonlSink`], which
//! renders each record as one JSON line (the exported trace format,
//! parseable back with [`parse_jsonl`]).

use std::sync::{Mutex, MutexGuard};

use serde::{Deserialize, Serialize};

/// Key/value annotations on a span or event.
pub type KeyValues = Vec<(String, String)>;

/// Builds one key/value pair from anything displayable.
pub fn kv(key: impl Into<String>, value: impl ToString) -> (String, String) {
    (key.into(), value.to_string())
}

/// One exported trace entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A completed span.
    Span {
        /// Hierarchy path, `/`-joined parent names (e.g.
        /// `executor.run/executor.shard/inference`).
        path: String,
        /// The span's own name (last path segment).
        name: String,
        /// Clock reading at entry, ns.
        start_ns: u64,
        /// Total duration, ns.
        dur_ns: u64,
        /// Duration not attributed to child spans, ns.
        self_ns: u64,
        /// Annotations provided at entry.
        kvs: KeyValues,
    },
    /// A one-shot structured event.
    Event {
        /// Event name (e.g. `fault.injected`).
        name: String,
        /// Clock reading when emitted, ns.
        at_ns: u64,
        /// Annotations.
        kvs: KeyValues,
    },
}

impl TraceRecord {
    /// The record's name (span name or event name).
    pub fn name(&self) -> &str {
        match self {
            TraceRecord::Span { name, .. } => name,
            TraceRecord::Event { name, .. } => name,
        }
    }

    /// Looks up an annotation value by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        let kvs = match self {
            TraceRecord::Span { kvs, .. } => kvs,
            TraceRecord::Event { kvs, .. } => kvs,
        };
        kvs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Receives every completed span and emitted event.
///
/// Implementations must be thread-safe (executor workers record
/// concurrently) and should be cheap — recording happens on the hot
/// path when telemetry is enabled.
pub trait TraceSink: Send + Sync {
    /// Accepts one record.
    fn record(&self, record: &TraceRecord);
}

/// Poison-tolerant lock (a worker panic caught by the supervised
/// executor must not wedge later recording).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// In-memory sink for assertions in tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<TraceRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A copy of everything recorded so far.
    pub fn records(&self) -> Vec<TraceRecord> {
        lock(&self.records).clone()
    }

    /// Records whose name matches exactly.
    pub fn named(&self, name: &str) -> Vec<TraceRecord> {
        lock(&self.records)
            .iter()
            .filter(|r| r.name() == name)
            .cloned()
            .collect()
    }

    /// How many records have been captured.
    pub fn len(&self) -> usize {
        lock(&self.records).len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops everything captured so far.
    pub fn clear(&self) {
        lock(&self.records).clear();
    }
}

impl TraceSink for MemorySink {
    fn record(&self, record: &TraceRecord) {
        lock(&self.records).push(record.clone());
    }
}

/// JSONL exporter: one serialized [`TraceRecord`] per line, in the
/// order records were received.
#[derive(Debug, Default)]
pub struct JsonlSink {
    lines: Mutex<Vec<String>>,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// Lines captured so far.
    pub fn lines(&self) -> Vec<String> {
        lock(&self.lines).clone()
    }

    /// The whole trace as one newline-terminated JSONL document.
    pub fn to_jsonl(&self) -> String {
        let lines = lock(&self.lines);
        let mut out = String::new();
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Writes the trace to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// How many records have been captured.
    pub fn len(&self) -> usize {
        lock(&self.lines).len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, record: &TraceRecord) {
        if let Ok(line) = serde_json::to_string(record) {
            lock(&self.lines).push(line);
        }
    }
}

/// Adapts a closure into a [`TraceSink`] — the hook that lets a caller
/// stream live trace records somewhere structured (a progress channel,
/// a metrics bridge) without defining a sink type.
///
/// The closure runs on whichever thread completes the span or emits the
/// event, so it must be `Send + Sync` and should stay cheap; anything
/// expensive belongs behind a channel on the far side.
pub struct FnSink<F: Fn(&TraceRecord) + Send + Sync> {
    f: F,
}

impl<F: Fn(&TraceRecord) + Send + Sync> FnSink<F> {
    /// Wraps `f` as a sink.
    pub fn new(f: F) -> Self {
        FnSink { f }
    }
}

impl<F: Fn(&TraceRecord) + Send + Sync> TraceSink for FnSink<F> {
    fn record(&self, record: &TraceRecord) {
        (self.f)(record);
    }
}

impl<F: Fn(&TraceRecord) + Send + Sync> std::fmt::Debug for FnSink<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnSink")
    }
}

/// Parses a JSONL trace document back into records (the inverse of
/// [`JsonlSink::to_jsonl`]); blank lines are skipped.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, serde_json::Error> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::Span {
                path: "run/shard".to_string(),
                name: "shard".to_string(),
                start_ns: 100,
                dur_ns: 50,
                self_ns: 30,
                kvs: vec![kv("model", "GPT4o")],
            },
            TraceRecord::Event {
                name: "fault.injected".to_string(),
                at_ns: 120,
                kvs: vec![kv("kind", "timeout"), kv("question", "digital-001")],
            },
        ]
    }

    #[test]
    fn memory_sink_captures_and_filters() {
        let sink = MemorySink::new();
        for r in sample() {
            sink.record(&r);
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.named("fault.injected").len(), 1);
        assert_eq!(sink.named("fault.injected")[0].get("kind"), Some("timeout"));
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_roundtrips() {
        let sink = JsonlSink::new();
        let records = sample();
        for r in &records {
            sink.record(r);
        }
        let text = sink.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).expect("parses");
        assert_eq!(back, records);
    }

    #[test]
    fn fn_sink_forwards_records() {
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = {
            let seen = std::sync::Arc::clone(&seen);
            FnSink::new(move |r: &TraceRecord| {
                lock(&seen).push(r.name().to_string());
            })
        };
        for r in sample() {
            sink.record(&r);
        }
        assert_eq!(
            *lock(&seen),
            vec!["shard".to_string(), "fault.injected".to_string()]
        );
    }

    #[test]
    fn parse_skips_blank_lines() {
        let sink = JsonlSink::new();
        for r in sample() {
            sink.record(&r);
        }
        let padded = format!("\n{}\n\n", sink.to_jsonl());
        assert_eq!(parse_jsonl(&padded).expect("parses").len(), 2);
    }
}

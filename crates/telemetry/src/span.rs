//! Hierarchical span guards.
//!
//! A [`Span`] measures the region between its construction and its
//! drop. Nesting is tracked per thread: each span knows its parent's
//! hierarchy path, and a parent's *self time* is its duration minus the
//! total duration of its direct children — so the summary table can
//! show where time is actually spent, not just who is on the stack.
//!
//! A span from a disabled [`Telemetry`](crate::Telemetry) handle is a
//! no-op shell: no clock read, no thread-local touch, no allocation.

use std::cell::RefCell;

use crate::sink::{KeyValues, TraceRecord};
use crate::{Inner, Telemetry};

struct Frame {
    path: String,
    child_ns: u64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one timed region. Construct through
/// [`Span::enter`] or [`Telemetry::span`]; the measurement completes
/// when the guard drops.
#[must_use = "a span measures until it is dropped"]
pub struct Span<'t> {
    active: Option<ActiveSpan<'t>>,
}

struct ActiveSpan<'t> {
    inner: &'t Inner,
    name: &'static str,
    start_ns: u64,
    kvs: KeyValues,
}

impl<'t> Span<'t> {
    /// Enters a span named `name` under `telemetry`, annotated with
    /// `kvs`. Pass `Vec::new()` when there is nothing to annotate (it
    /// does not allocate).
    pub fn enter(telemetry: &'t Telemetry, name: &'static str, kvs: KeyValues) -> Span<'t> {
        let Some(inner) = telemetry.inner() else {
            return Span { active: None };
        };
        let start_ns = inner.clock.now_ns();
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{}/{}", parent.path, name),
                None => name.to_string(),
            };
            stack.push(Frame { path, child_ns: 0 });
        });
        Span {
            active: Some(ActiveSpan {
                inner,
                name,
                start_ns,
                kvs,
            }),
        }
    }

    /// Whether this guard is actually measuring (false for spans from a
    /// disabled handle).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else {
            return;
        };
        let end_ns = span.inner.clock.now_ns();
        let dur_ns = end_ns.saturating_sub(span.start_ns);
        let frame = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop().expect("span stack underflow");
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(dur_ns);
            }
            frame
        });
        let self_ns = dur_ns.saturating_sub(frame.child_ns);
        span.inner
            .registry
            .record_span(&frame.path, dur_ns, self_ns);
        if !span.inner.sinks.is_empty() {
            let record = TraceRecord::Span {
                path: frame.path,
                name: span.name.to_string(),
                start_ns: span.start_ns,
                dur_ns,
                self_ns,
                kvs: span.kvs,
            };
            for sink in &span.inner.sinks {
                sink.record(&record);
            }
        }
    }
}

/// RAII guard that records its elapsed time into a named histogram on
/// drop. Construct through [`Telemetry::timer`].
#[must_use = "a timer measures until it is dropped"]
pub struct Timer<'t> {
    active: Option<(&'t Inner, &'static str, u64)>,
}

impl<'t> Timer<'t> {
    pub(crate) fn start(telemetry: &'t Telemetry, name: &'static str) -> Timer<'t> {
        let active = telemetry
            .inner()
            .map(|inner| (inner, name, inner.clock.now_ns()));
        Timer { active }
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        let Some((inner, name, start_ns)) = self.active.take() else {
            return;
        };
        let elapsed = inner.clock.now_ns().saturating_sub(start_ns);
        inner.registry.observe(name, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::clock::MockClock;
    use crate::sink::MemorySink;

    fn mock_telemetry() -> (Telemetry, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        let tele = Telemetry::builder()
            .clock(MockClock::new(10))
            .sink(Arc::clone(&sink))
            .build();
        (tele, sink)
    }

    #[test]
    fn nested_spans_build_paths_and_self_time() {
        let (tele, sink) = mock_telemetry();
        {
            let _outer = Span::enter(&tele, "outer", Vec::new());
            {
                let _inner = Span::enter(&tele, "inner", Vec::new());
            }
        }
        // MockClock: outer start t=0, inner start t=10, inner end t=20
        // (dur 10), outer end t=30 (dur 30, child 10, self 20).
        let records = sink.records();
        assert_eq!(records.len(), 2);
        match &records[0] {
            TraceRecord::Span {
                path,
                dur_ns,
                self_ns,
                ..
            } => {
                assert_eq!(path, "outer/inner");
                assert_eq!((*dur_ns, *self_ns), (10, 10));
            }
            other => panic!("expected span, got {other:?}"),
        }
        match &records[1] {
            TraceRecord::Span {
                path,
                dur_ns,
                self_ns,
                ..
            } => {
                assert_eq!(path, "outer");
                assert_eq!((*dur_ns, *self_ns), (30, 20));
            }
            other => panic!("expected span, got {other:?}"),
        }
        let snap = tele.snapshot();
        assert_eq!(snap.spans["outer"].self_ns, 20);
        assert_eq!(snap.spans["outer/inner"].total_ns, 10);
    }

    #[test]
    fn disabled_spans_are_inert() {
        let tele = Telemetry::disabled();
        let span = Span::enter(&tele, "anything", Vec::new());
        assert!(!span.is_recording());
        drop(span);
        assert_eq!(tele.snapshot(), crate::MetricsSnapshot::default());
    }

    #[test]
    fn sibling_spans_share_a_parent_path() {
        let (tele, sink) = mock_telemetry();
        {
            let _run = Span::enter(&tele, "run", Vec::new());
            for _ in 0..2 {
                let _shard = Span::enter(&tele, "shard", Vec::new());
            }
        }
        let snap = tele.snapshot();
        assert_eq!(snap.spans["run/shard"].count, 2);
        assert_eq!(snap.spans["run"].count, 1);
        assert_eq!(sink.records().len(), 3);
    }

    #[test]
    fn spans_survive_unwinding() {
        let (tele, _sink) = mock_telemetry();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _span = Span::enter(&tele, "doomed", Vec::new());
            panic!("injected");
        }));
        assert!(result.is_err());
        // the stack unwound cleanly: a fresh span still works
        {
            let _span = Span::enter(&tele, "after", Vec::new());
        }
        let snap = tele.snapshot();
        assert_eq!(snap.spans["doomed"].count, 1);
        assert_eq!(snap.spans["after"].count, 1);
    }

    #[test]
    fn timer_records_into_a_histogram() {
        let (tele, _sink) = mock_telemetry();
        {
            let _t = Timer::start(&tele, "question_ns");
        }
        let snap = tele.snapshot();
        assert_eq!(snap.histograms["question_ns"].count, 1);
        assert_eq!(snap.histograms["question_ns"].sum, 10);
    }
}

//! Derive macros for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenTree` (no syn/quote — the
//! build is offline). Supports the shapes this workspace uses: unit /
//! named / tuple structs, enums with unit / tuple / struct variants,
//! simple unbounded type parameters, and two field attributes:
//! `#[serde(skip)]` (skipped on write, defaulted on read) and
//! `#[serde(default)]` (written normally, defaulted when absent on
//! read — the forward-compatibility attribute for fields added after
//! data was serialized).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: Option<String>,
    attrs: FieldAttrs,
}

#[derive(Debug, Clone, Copy, Default)]
struct FieldAttrs {
    skip: bool,
    /// `#[serde(default)]`: absent-on-read falls back to `Default`.
    default: bool,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Kind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Type parameter names, in order (lifetimes unsupported).
    generics: Vec<String>,
    kind: Kind,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parse

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

fn ident_text(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Consumes leading attributes; returns the recognised `#[serde(...)]`
/// field flags (`skip`, `default`).
fn eat_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while *i < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 1;
        if let TokenTree::Group(g) = &tokens[*i] {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if inner.first().and_then(ident_text).as_deref() == Some("serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        match ident_text(&t).as_deref() {
                            Some("skip") => attrs.skip = true,
                            Some("default") => attrs.default = true,
                            _ => {}
                        }
                    }
                }
            }
            *i += 1;
        } else {
            panic!("serde_derive: malformed attribute");
        }
    }
    attrs
}

fn eat_visibility(tokens: &[TokenTree], i: &mut usize) {
    if *i < tokens.len() && ident_text(&tokens[*i]).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Splits a token sequence on top-level commas, treating `<…>` as
/// nesting (groups already nest via the token tree).
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    let mut prev_dash = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' if !prev_dash => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(group: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    split_top_commas(&tokens)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            let attrs = eat_attrs(&seg, &mut i);
            eat_visibility(&seg, &mut i);
            let name = ident_text(&seg[i]).expect("field name");
            Field {
                name: Some(name),
                attrs,
            }
        })
        .collect()
}

fn parse_tuple_fields(group: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    split_top_commas(&tokens)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            let attrs = eat_attrs(&seg, &mut i);
            eat_visibility(&seg, &mut i);
            Field { name: None, attrs }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    eat_attrs(&tokens, &mut i);
    eat_visibility(&tokens, &mut i);
    let kw = ident_text(&tokens[i]).unwrap_or_default();
    i += 1;
    let name = ident_text(&tokens[i]).expect("item name");
    i += 1;

    // generics
    let mut generics = Vec::new();
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        let mut depth = 1;
        i += 1;
        let mut params: Vec<TokenTree> = Vec::new();
        while depth > 0 {
            if is_punct(&tokens[i], '<') {
                depth += 1;
            } else if is_punct(&tokens[i], '>') {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            params.push(tokens[i].clone());
            i += 1;
        }
        for seg in split_top_commas(&params) {
            match &seg[0] {
                TokenTree::Ident(id) => {
                    assert!(
                        seg.len() == 1,
                        "serde_derive: bounded generic parameters are not supported"
                    );
                    generics.push(id.to_string());
                }
                _ => panic!("serde_derive: only plain type parameters are supported"),
            }
        }
    }

    if i < tokens.len() && ident_text(&tokens[i]).as_deref() == Some("where") {
        panic!("serde_derive: where clauses are not supported");
    }

    let kind = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Shape::Named(parse_named_fields(&g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Shape::Tuple(parse_tuple_fields(&g.stream())))
            }
            Some(t) if is_punct(t, ';') => Kind::Struct(Shape::Unit),
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => {
            let TokenTree::Group(g) = &tokens[i] else {
                panic!("serde_derive: expected enum body");
            };
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_top_commas(&body)
                .into_iter()
                .map(|seg| {
                    let mut j = 0;
                    eat_attrs(&seg, &mut j);
                    let vname = ident_text(&seg[j]).expect("variant name");
                    j += 1;
                    let shape = match seg.get(j) {
                        Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                            Shape::Named(parse_named_fields(&vg.stream()))
                        }
                        Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                            Shape::Tuple(parse_tuple_fields(&vg.stream()))
                        }
                        None => Shape::Unit,
                        Some(t) if is_punct(t, '=') => {
                            panic!("serde_derive: explicit discriminants are not supported")
                        }
                        other => panic!("serde_derive: unexpected variant body {other:?}"),
                    };
                    Variant { name: vname, shape }
                })
                .collect();
            Kind::Enum(variants)
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        kind,
    }
}

// ---------------------------------------------------------------- codegen

fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = item.generics.join(", ");
        (
            format!("<{}>", bounded.join(", ")),
            format!("{}<{}>", item.name, plain),
        )
    }
}

fn ser_named(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut s = String::from("{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n");
    for f in fields {
        let name = f.name.as_deref().expect("named field");
        if f.attrs.skip {
            continue;
        }
        s.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{name}\"), ::serde::Serialize::to_value({})));\n",
            accessor(name)
        ));
    }
    s.push_str("::serde::Value::Obj(__fields) }");
    s
}

fn de_named(fields: &[Field], ctor: &str, ctx: &str) -> String {
    let mut s = format!("{ctor} {{\n");
    for f in fields {
        let name = f.name.as_deref().expect("named field");
        if f.attrs.skip {
            s.push_str(&format!("{name}: ::std::default::Default::default(),\n"));
        } else if f.attrs.default {
            s.push_str(&format!(
                "{name}: match __v.get(\"{name}\") {{ Some(__x) => ::serde::Deserialize::from_value(__x)?, None => ::std::default::Default::default() }},\n"
            ));
        } else {
            s.push_str(&format!(
                "{name}: match __v.get(\"{name}\") {{ Some(__x) => ::serde::Deserialize::from_value(__x)?, None => return Err(::serde::DeError::missing(\"{name}\", \"{ctx}\")) }},\n"
            ));
        }
    }
    s.push('}');
    s
}

fn gen_serialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "Serialize");
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => "::serde::Value::Null".to_string(),
        Kind::Struct(Shape::Named(fields)) => ser_named(fields, |name| format!("&self.{name}")),
        Kind::Struct(Shape::Tuple(fields)) => match fields.len() {
            1 => "::serde::Serialize::to_value(&self.0)".to_string(),
            n => {
                let items: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Arr(vec![{}])", items.join(", "))
            }
        },
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let iname = &item.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{iname}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{iname}::{vname}({}) => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| f.name.clone().expect("named"))
                            .collect();
                        let inner = ser_named(fields, |name| name.to_string());
                        arms.push_str(&format!(
                            "{iname}::{vname} {{ {} }} => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vname}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {ty} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (generics, ty) = impl_header(item, "Deserialize");
    let iname = &item.name;
    let body = match &item.kind {
        Kind::Struct(Shape::Unit) => format!("let _ = __v; Ok({iname})"),
        Kind::Struct(Shape::Named(fields)) => {
            let build = de_named(fields, iname, iname);
            format!(
                "if __v.as_obj().is_none() {{ return Err(::serde::DeError::expected(\"object\", __v, \"{iname}\")); }}\nOk({build})"
            )
        }
        Kind::Struct(Shape::Tuple(fields)) => match fields.len() {
            1 => format!("Ok({iname}(::serde::Deserialize::from_value(__v)?))"),
            n => {
                let items: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __v.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array\", __v, \"{iname}\"))?;\nif __items.len() != {n} {{ return Err(::serde::DeError(format!(\"expected {n} elements for {iname}, found {{}}\", __items.len()))); }}\nOk({iname}({}))",
                    items.join(", ")
                )
            }
        },
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({iname}::{vname}),\n"))
                    }
                    Shape::Tuple(fields) => {
                        let build = if fields.len() == 1 {
                            format!(
                                "Ok({iname}::{vname}(::serde::Deserialize::from_value(__inner)?))"
                            )
                        } else {
                            let n = fields.len();
                            let items: Vec<String> = (0..n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{ let __items = __inner.as_arr().ok_or_else(|| ::serde::DeError::expected(\"array\", __inner, \"{iname}::{vname}\"))?;\nif __items.len() != {n} {{ return Err(::serde::DeError(format!(\"expected {n} elements for {iname}::{vname}, found {{}}\", __items.len()))); }}\nOk({iname}::{vname}({})) }}",
                                items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("\"{vname}\" => {build},\n"));
                    }
                    Shape::Named(fields) => {
                        let build = de_named(
                            fields,
                            &format!("{iname}::{vname}"),
                            &format!("{iname}::{vname}"),
                        );
                        data_arms.push_str(&format!(
                            "\"{vname}\" => {{ let __v = __inner; if __v.as_obj().is_none() {{ return Err(::serde::DeError::expected(\"object\", __v, \"{iname}::{vname}\")); }} Ok({build}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::DeError(format!(\"unknown variant `{{}}` of {iname}\", __other))),\n}},\n\
                 ::serde::Value::Obj(__fields) if __fields.len() == 1 => {{\n\
                 let (__tag, __inner) = &__fields[0];\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => Err(::serde::DeError(format!(\"unknown variant `{{}}` of {iname}\", __other))),\n}}\n}},\n\
                 __other => Err(::serde::DeError::expected(\"string or single-key object\", __other, \"{iname}\")),\n}}"
            )
        }
    };
    format!(
        "impl{generics} ::serde::Deserialize for {ty} {{\n fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n {body}\n }}\n }}"
    )
}

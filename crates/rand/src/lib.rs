//! Offline, vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 API surface), built because this workspace must compile
//! without network access to a crates registry.
//!
//! Only the APIs the ChipVQA workspace uses are provided, but those are
//! implemented **bit-compatibly** with `rand 0.8.5`:
//!
//! * [`rngs::StdRng`] is ChaCha12 with `rand_core 0.6`'s
//!   `seed_from_u64` (PCG32 seed expansion) and `BlockRng` consumption
//!   order — the keystream matches the real crate word for word.
//! * [`Rng::gen_range`] reproduces `UniformInt::sample_single`
//!   (widening-multiply rejection) and `UniformFloat::sample_single`
//!   (the `[1, 2)` mantissa trick).
//! * [`Rng::gen_bool`] reproduces `Bernoulli` (scaled `u64` compare).
//! * [`seq::SliceRandom::shuffle`] reproduces the Fisher–Yates walk with
//!   the `u32` `gen_index` fast path.
//!
//! Bit-compatibility matters: the model zoo's calibrated behaviour (and
//! every seeded test in this repository) depends on the exact stream.

#![forbid(unsafe_code)]

mod chacha;

use std::ops::{Range, RangeInclusive};

/// Core RNG abstraction (mirror of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG abstraction (mirror of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64`, expanding with PCG32 exactly like
    /// `rand_core 0.6`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard RNG: ChaCha12, identical to `rand 0.8`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng(crate::chacha::ChaCha12Core);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(crate::chacha::ChaCha12Core::from_seed(seed))
        }
    }
}

/// Distributions (mirror of `rand::distributions`).
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution (full-range ints, `[0, 1)` floats,
    /// sign-bit bools) — output-compatible with `rand 0.8`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }
    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<i8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i8 {
            rng.next_u32() as i8
        }
    }
    impl Distribution<i16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i16 {
            rng.next_u32() as i16
        }
    }
    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }
    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Distribution<isize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> isize {
            rng.next_u64() as isize
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // rand 0.8: sign test on the most significant bit
            (rng.next_u32() as i32) < 0
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53-bit multiply method, [0, 1)
            let scale = 1.0 / ((1u64 << 53) as f64);
            let value = rng.next_u64() >> 11;
            scale * value as f64
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let scale = 1.0 / ((1u32 << 24) as f32);
            let value = rng.next_u32() >> 8;
            scale * value as f32
        }
    }

    /// Bernoulli distribution, bit-compatible with `rand 0.8`.
    #[derive(Debug, Clone, Copy)]
    pub struct Bernoulli {
        p_int: u64,
    }

    const ALWAYS_TRUE: u64 = u64::MAX;
    const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

    /// Error for an out-of-range probability.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct BernoulliError;

    impl Bernoulli {
        /// Builds the distribution; `p` must be in `[0, 1]`.
        pub fn new(p: f64) -> Result<Bernoulli, BernoulliError> {
            if !(0.0..1.0).contains(&p) {
                if p == 1.0 {
                    return Ok(Bernoulli { p_int: ALWAYS_TRUE });
                }
                return Err(BernoulliError);
            }
            Ok(Bernoulli {
                p_int: (p * SCALE) as u64,
            })
        }
    }

    impl Distribution<bool> for Bernoulli {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            if self.p_int == ALWAYS_TRUE {
                return true;
            }
            rng.next_u64() < self.p_int
        }
    }
}

use distributions::{Bernoulli, Distribution, Standard};

/// Types that can be sampled uniformly from a range (sealed, by macro).
pub trait SampleUniform: Sized {
    /// Draws from `low..high` (exclusive).
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Draws from `low..=high` (inclusive).
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! wmul_impl {
    (u32) => {
        #[inline(always)]
        fn wmul(a: u32, b: u32) -> (u32, u32) {
            let t = u64::from(a) * u64::from(b);
            ((t >> 32) as u32, t as u32)
        }
    };
    (u64) => {
        #[inline(always)]
        fn wmul(a: u64, b: u64) -> (u64, u64) {
            let t = u128::from(a) * u128::from(b);
            ((t >> 64) as u64, t as u64)
        }
    };
    (usize) => {
        #[inline(always)]
        fn wmul(a: usize, b: usize) -> (usize, usize) {
            let t = (a as u128) * (b as u128);
            ((t >> 64) as usize, t as usize)
        }
    };
}

macro_rules! uniform_int_impl {
    ($ty:ident, $unsigned:ident, $u_large:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "cannot sample empty range");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(low <= high, "cannot sample empty range");
                wmul_impl!($u_large);
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                // wrapped to zero: the range spans the whole type
                if range == 0 {
                    return Standard.sample(rng);
                }
                let zone = if (<$unsigned>::MAX as u64) <= (u16::MAX as u64) {
                    // small types: precise rejection zone via modulus
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = Standard.sample(rng);
                    let (hi, lo) = wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl! { i8, u8, u32 }
uniform_int_impl! { i16, u16, u32 }
uniform_int_impl! { i32, u32, u32 }
uniform_int_impl! { i64, u64, u64 }
uniform_int_impl! { isize, usize, usize }
uniform_int_impl! { u8, u8, u32 }
uniform_int_impl! { u16, u16, u32 }
uniform_int_impl! { u32, u32, u32 }
uniform_int_impl! { u64, u64, u64 }
uniform_int_impl! { usize, usize, usize }

macro_rules! uniform_float_impl {
    ($ty:ident, $uty:ident, $bits_to_discard:expr, $exponent_one:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                assert!(low < high, "cannot sample empty range");
                let scale = high - low;
                loop {
                    // a value in [1, 2) from the mantissa bits, then shift
                    let bits: $uty = Standard.sample(rng);
                    let value1_2 = <$ty>::from_bits((bits >> $bits_to_discard) | $exponent_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                assert!(low <= high, "cannot sample empty range");
                if low == high {
                    return low;
                }
                let scale = high - low;
                let bits: $uty = Standard.sample(rng);
                let value1_2 = <$ty>::from_bits((bits >> $bits_to_discard) | $exponent_one);
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }
        }
    };
}

uniform_float_impl! { f64, u64, 12, 0x3ff0_0000_0000_0000u64 }
uniform_float_impl! { f32, u32, 9, 0x3f80_0000u32 }

/// Range argument for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a single value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_single_inclusive(start, end, rng)
    }
}

/// User-facing RNG extension trait (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let d = Bernoulli::new(p).expect("probability out of range");
        d.sample(self)
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills a byte slice.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (mirror of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Uniform index below `ubound`, matching `rand 0.8`'s `gen_index`
    /// (a `u32` draw whenever the bound fits, which it virtually always
    /// does).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            rng.gen_range(0..ubound as u32) as usize
        } else {
            rng.gen_range(0..ubound)
        }
    }

    /// Slice shuffling and choosing (mirror of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle, identical walk to `rand 0.8`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(gen_index(rng, self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seed_from_u64_is_stable() {
        // PCG32 expansion of 0 — regression-pin the first key words so
        // accidental changes to the expansion are caught loudly.
        let mut a = rngs::StdRng::seed_from_u64(0);
        let mut b = rngs::StdRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = rngs::StdRng::seed_from_u64(1);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds_ints() {
        let mut rng = rngs::StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-128i64..=-2);
            assert!((-128..=-2).contains(&w));
            let u: usize = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_range_floats_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v: f64 = rng.gen_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        let mut r1 = rngs::StdRng::seed_from_u64(9);
        let mut r2 = rngs::StdRng::seed_from_u64(9);
        a.shuffle(&mut r1);
        b.shuffle(&mut r2);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements virtually never stay sorted");
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = rngs::StdRng::seed_from_u64(1234);
        let mut buckets = [0usize; 8];
        for _ in 0..80_000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "{buckets:?}");
        }
    }
}

//! ChaCha12 block generator, bit-compatible with `rand_chacha`'s
//! `ChaCha12Rng` as used by `rand 0.8`'s `StdRng`.
//!
//! The generator refills a 64-word (256-byte) buffer at a time — four
//! sequential ChaCha blocks — and consumes it through the same
//! `BlockRng` index logic as `rand_core 0.6`, including the split-word
//! `next_u64` edge case at the end of the buffer.

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
/// Words produced per refill: four 16-word ChaCha blocks.
const BUF_WORDS: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block with `rounds` rounds (12 for `StdRng`).
fn block(key: &[u32; 8], counter: u64, stream: u64, rounds: usize) -> [u32; 16] {
    let mut x = [0u32; 16];
    x[..4].copy_from_slice(&CONSTANTS);
    x[4..12].copy_from_slice(key);
    x[12] = counter as u32;
    x[13] = (counter >> 32) as u32;
    x[14] = stream as u32;
    x[15] = (stream >> 32) as u32;
    let mut w = x;
    for _ in 0..rounds / 2 {
        quarter_round(&mut w, 0, 4, 8, 12);
        quarter_round(&mut w, 1, 5, 9, 13);
        quarter_round(&mut w, 2, 6, 10, 14);
        quarter_round(&mut w, 3, 7, 11, 15);
        quarter_round(&mut w, 0, 5, 10, 15);
        quarter_round(&mut w, 1, 6, 11, 12);
        quarter_round(&mut w, 2, 7, 8, 13);
        quarter_round(&mut w, 3, 4, 9, 14);
    }
    for i in 0..16 {
        w[i] = w[i].wrapping_add(x[i]);
    }
    w
}

/// ChaCha12 keystream generator with `BlockRng`-compatible consumption.
#[derive(Debug, Clone)]
pub struct ChaCha12Core {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; BUF_WORDS],
    /// Next word to hand out; `BUF_WORDS` means "refill before use".
    index: usize,
}

impl ChaCha12Core {
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Core {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }

    /// Refills the buffer with the next four blocks and positions the
    /// read index (mirrors `BlockRng::generate_and_set`).
    fn generate_and_set(&mut self, index: usize) {
        for b in 0..4 {
            let out = block(
                &self.key,
                self.counter.wrapping_add(b as u64),
                self.stream,
                12,
            );
            self.buf[b * 16..(b + 1) * 16].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = index;
    }

    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate_and_set(0);
        }
        let value = self.buf[self.index];
        self.index += 1;
        value
    }

    pub fn next_u64(&mut self) -> u64 {
        let read = |buf: &[u32; BUF_WORDS], i: usize| -> u64 {
            u64::from(buf[i + 1]) << 32 | u64::from(buf[i])
        };
        let index = self.index;
        if index < BUF_WORDS - 1 {
            self.index += 2;
            read(&self.buf, index)
        } else if index >= BUF_WORDS {
            self.generate_and_set(2);
            read(&self.buf, 0)
        } else {
            // last word of the old buffer + first word of the new one
            let x = u64::from(self.buf[BUF_WORDS - 1]);
            self.generate_and_set(1);
            let y = u64::from(self.buf[0]);
            (y << 32) | x
        }
    }

    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        // rand_core::impls::fill_via_u32_chunks consumption order
        let mut i = 0;
        while i < dest.len() {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let word = self.buf[self.index].to_le_bytes();
            self.index += 1;
            let n = (dest.len() - i).min(4);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2-adjacent check: ChaCha20 keystream for the
    /// all-zero key, zero counter and zero nonce. First block begins
    /// 76 b8 e0 ad a0 f1 3d 90 … (little-endian words).
    #[test]
    fn chacha20_zero_vector() {
        let out = block(&[0u32; 8], 0, 0, 20);
        assert_eq!(out[0], 0xade0_b876);
        assert_eq!(out[1], 0x903d_f1a0);
        assert_eq!(out[2], 0xe56a_5d40);
        assert_eq!(out[3], 0x28bd_8653);
    }

    #[test]
    fn blocks_are_sequential() {
        let mut core = ChaCha12Core::from_seed([7u8; 32]);
        let mut first64: Vec<u32> = (0..64).map(|_| core.next_u32()).collect();
        let again: Vec<u32> = {
            let mut c2 = ChaCha12Core::from_seed([7u8; 32]);
            (0..64).map(|_| c2.next_u32()).collect()
        };
        assert_eq!(first64, again);
        first64.dedup();
        assert!(first64.len() > 32, "keystream should not repeat trivially");
    }

    #[test]
    fn next_u64_split_word_edge() {
        // Consume 63 u32s, then a u64 must stitch word 63 with word 0 of
        // the next refill — and stay consistent with a fresh instance.
        let mut a = ChaCha12Core::from_seed([3u8; 32]);
        for _ in 0..63 {
            a.next_u32();
        }
        let split = a.next_u64();
        let mut b = ChaCha12Core::from_seed([3u8; 32]);
        let mut words = Vec::new();
        for _ in 0..130 {
            words.push(b.next_u32());
        }
        assert_eq!(split & 0xffff_ffff, u64::from(words[63]));
        assert_eq!(split >> 32, u64::from(words[64]));
    }
}

//! The vision tool: a VLM used purely as an image describer.

use chipvqa_core::question::Question;
use chipvqa_models::encoder;
use chipvqa_models::profile::ModelProfile;
use rand::rngs::StdRng;

/// What the tool reports back for one request round.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolObservation {
    /// Mark indices the tool perceived this round.
    pub perceived: Vec<usize>,
    /// The prose description handed to the planner.
    pub description: String,
}

/// A VLM deployed as a describe-the-image tool.
#[derive(Debug, Clone, PartialEq)]
pub struct VisionTool {
    profile: ModelProfile,
}

impl VisionTool {
    /// Wraps a vision-capable profile.
    pub fn new(profile: ModelProfile) -> Self {
        profile.validate();
        VisionTool { profile }
    }

    /// The wrapped profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Looks at the question's image and describes what it perceived.
    /// Each `round` re-examines the image (fresh perception roll), which
    /// is how repeated tool calls recover facts missed earlier.
    pub fn describe(&self, question: &Question, round: u32, rng: &mut StdRng) -> ToolObservation {
        let _ = round; // rounds differ through the shared rng stream
        let percept = encoder::perceive(&self.profile, question, 1, rng);
        let labels: Vec<String> = percept
            .perceived
            .iter()
            .filter_map(|&i| question.visual.marks.get(i))
            .map(|m| m.label.clone())
            .collect();
        let description = if labels.is_empty() {
            format!(
                "The image is a {} related to {}; no further detail is legible.",
                question.visual_kind, question.category
            )
        } else {
            format!("The {} shows: {}.", question.visual_kind, labels.join("; "))
        };
        ToolObservation {
            perceived: percept.perceived,
            description,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_core::ChipVqa;
    use chipvqa_models::ModelZoo;
    use rand::SeedableRng;

    #[test]
    fn describes_perceived_marks() {
        let bench = ChipVqa::standard();
        let tool = VisionTool::new(ModelZoo::gpt4o());
        let q = bench
            .iter()
            .find(|q| !q.key_marks.is_empty())
            .expect("marked question");
        let mut rng = StdRng::seed_from_u64(0);
        let obs = tool.describe(q, 0, &mut rng);
        assert!(!obs.description.is_empty());
        if !obs.perceived.is_empty() {
            let first = &q.visual.marks[obs.perceived[0]].label;
            assert!(obs.description.contains(first.as_str()));
        }
    }

    #[test]
    fn blind_tool_perceives_nothing() {
        let bench = ChipVqa::standard();
        let mut blind = ModelZoo::gpt4o();
        blind.visual_acuity = 0.0;
        let tool = VisionTool::new(blind);
        let q = &bench.questions()[0];
        let mut rng = StdRng::seed_from_u64(0);
        let obs = tool.describe(q, 0, &mut rng);
        assert!(obs.perceived.is_empty());
        assert!(obs.description.contains("no further detail"));
    }
}

//! Agent-based VQA for ChipVQA (§IV-C, Table III).
//!
//! The paper's proof-of-concept: a GPT-4-Turbo "chip designer" *without
//! visual access* answers questions by calling GPT-4o as a vision tool
//! that describes the image; the loop repeats until the designer commits
//! to an answer. The reproduction implements exactly that wiring on top
//! of the simulator: a text-only [`planner`](crate::AgentSystem) profile
//! with stronger knowledge/reasoning, a [`tool`] that perceives marks
//! with the vision model's encoder, and a lossy description
//! [`channel`](crate::ChannelConfig) between them (facts survive
//! verbalisation with some fidelity; precise quantitative details — the
//! manufacturing questions' stock-in-trade — garble more often). The
//! Table III outcome (helps with choices, roughly neutral without,
//! regresses on Manufacture) is emergent from those mechanics.
//!
//! # Example
//!
//! ```
//! use chipvqa_agent::AgentSystem;
//! use chipvqa_core::ChipVqa;
//!
//! let bench = ChipVqa::standard();
//! let agent = AgentSystem::paper_setup();
//! let q = bench.questions().first().expect("nonempty");
//! let out = agent.answer(q, 0);
//! assert!(out.transcript.rounds() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod tool;
pub mod transcript;

use chipvqa_core::question::Question;
use chipvqa_models::backbone;
use chipvqa_models::encoder::Percept;
use chipvqa_models::profile::ModelProfile;
use chipvqa_models::ModelZoo;
use chipvqa_telemetry::{kv, Telemetry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use tool::VisionTool;
use transcript::{Transcript, TurnRecord};

/// Fidelity of the tool-to-planner description channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Probability a perceived fact survives verbalisation intact.
    pub fact_fidelity: f64,
    /// Fidelity multiplier for precise quantitative facts (dimensions,
    /// rates, doses) — the details that garble when described in prose.
    pub quantitative_penalty: f64,
    /// Maximum tool-call rounds before the planner must commit.
    pub max_rounds: u32,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            fact_fidelity: 0.82,
            quantitative_penalty: 0.58,
            max_rounds: 3,
        }
    }
}

/// The agent's final output.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentResponse {
    /// Final answer text.
    pub text: String,
    /// The tool-call conversation.
    pub transcript: Transcript,
}

/// The planner + vision-tool system.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentSystem {
    planner: ModelProfile,
    tool: VisionTool,
    channel: ChannelConfig,
    telemetry: Telemetry,
}

impl AgentSystem {
    /// Builds an agent from explicit parts (telemetry disabled).
    pub fn new(planner: ModelProfile, vision: ModelProfile, channel: ChannelConfig) -> Self {
        planner.validate();
        AgentSystem {
            planner,
            tool: VisionTool::new(vision),
            channel,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a [`Telemetry`] handle recording the tool-call loop:
    /// `agent.answer` spans, round/tool-call/fact counters and
    /// `agent.channel.garble` events. The rng streams are untouched, so
    /// answers are identical with telemetry on or off.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The paper's configuration: GPT-4-Turbo designer, GPT-4o vision
    /// tool.
    pub fn paper_setup() -> Self {
        AgentSystem::new(
            ModelZoo::gpt4_turbo_text(),
            ModelZoo::gpt4o(),
            ChannelConfig::default(),
        )
    }

    /// The planner profile.
    pub fn planner(&self) -> &ModelProfile {
        &self.planner
    }

    /// Answers one question through the tool-call loop.
    pub fn answer(&self, question: &Question, attempt: u64) -> AgentResponse {
        let tele = &self.telemetry;
        let _span = if tele.enabled() {
            tele.span_kv("agent.answer", vec![kv("question", &question.id)])
        } else {
            tele.span("agent.answer")
        };
        let mut rng = self.rng_for(question, attempt);
        let mut transcript = Transcript::default();
        let mut transmitted: Vec<usize> = Vec::new();
        let required = question.key_marks.len();

        for round in 0..self.channel.max_rounds {
            tele.counter("agent.rounds", 1);
            tele.counter("agent.tool_calls", 1);
            // Planner asks; tool looks at the image.
            let observed = self.tool.describe(question, round, &mut rng);
            let mut new_facts = Vec::new();
            for &mark in &observed.perceived {
                if transmitted.contains(&mark) {
                    continue;
                }
                // Lossy verbalisation.
                let fidelity = if question.difficulty.requires_arithmetic {
                    self.channel.fact_fidelity * self.channel.quantitative_penalty
                } else {
                    self.channel.fact_fidelity
                };
                if rng.gen_bool(fidelity.clamp(0.0, 1.0)) {
                    transmitted.push(mark);
                    new_facts.push(mark);
                    tele.counter("agent.facts.delivered", 1);
                } else {
                    tele.counter("agent.facts.garbled", 1);
                    if tele.enabled() {
                        tele.event(
                            "agent.channel.garble",
                            vec![
                                kv("question", &question.id),
                                kv("mark", mark),
                                kv("round", round),
                            ],
                        );
                    }
                }
            }
            transcript.push(TurnRecord {
                round,
                request: if round == 0 {
                    "Describe the figure relevant to the question.".to_string()
                } else {
                    "Describe the remaining details more precisely.".to_string()
                },
                description: observed.description.clone(),
                facts_delivered: new_facts.len(),
            });
            // Planner stops early once it has everything it needs.
            if required == 0 || transmitted.len() == required {
                break;
            }
        }

        let coverage = if required == 0 {
            1.0
        } else {
            transmitted.len() as f64 / required as f64
        };
        let percept = Percept {
            perceived: transmitted,
            required,
            coverage,
        };
        let ans = backbone::answer(&self.planner, question, &percept, 0.1, &mut rng);
        AgentResponse {
            text: ans.text,
            transcript,
        }
    }

    fn rng_for(&self, question: &Question, attempt: u64) -> StdRng {
        let mut seed = 0x9e37_79b9_7f4a_7c15u64;
        for b in self
            .planner
            .name
            .bytes()
            .chain(question.id.bytes())
            .chain(attempt.to_le_bytes())
        {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipvqa_core::ChipVqa;
    use chipvqa_eval::harness::{evaluate, EvalOptions};
    use chipvqa_eval::{Judge, RuleJudge};
    use chipvqa_models::VlmPipeline;

    #[test]
    fn agent_answers_deterministically() {
        let bench = ChipVqa::standard();
        let agent = AgentSystem::paper_setup();
        let q = &bench.questions()[5];
        let a = agent.answer(q, 0);
        let b = agent.answer(q, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn transcript_records_rounds() {
        let bench = ChipVqa::standard();
        let agent = AgentSystem::paper_setup();
        let q = bench
            .iter()
            .find(|q| q.key_marks.len() >= 4)
            .expect("fact-rich question exists");
        let out = agent.answer(q, 0);
        assert!(out.transcript.rounds() >= 1);
        assert!(out.transcript.rounds() <= 3);
        assert!(!out.transcript.turns[0].description.is_empty());
    }

    #[test]
    fn telemetry_observes_the_loop_without_changing_answers() {
        use chipvqa_telemetry::{MemorySink, MockClock, Telemetry};
        use std::sync::Arc;

        let bench = ChipVqa::standard();
        let q = bench
            .iter()
            .find(|q| q.key_marks.len() >= 4)
            .expect("fact-rich question exists");
        let plain = AgentSystem::paper_setup().answer(q, 0);

        let sink = Arc::new(MemorySink::new());
        let tele = Telemetry::builder()
            .clock(MockClock::new(1))
            .sink(Arc::clone(&sink))
            .build();
        let traced = AgentSystem::paper_setup()
            .with_telemetry(tele.clone())
            .answer(q, 0);
        assert_eq!(plain, traced, "telemetry must not perturb the rng stream");

        let snap = tele.snapshot();
        assert_eq!(snap.spans["agent.answer"].count, 1);
        assert_eq!(
            snap.counters["agent.rounds"] as usize,
            traced.transcript.rounds()
        );
        assert_eq!(
            snap.counters["agent.rounds"],
            snap.counters["agent.tool_calls"]
        );
        let delivered: usize = traced
            .transcript
            .turns
            .iter()
            .map(|t| t.facts_delivered)
            .sum();
        assert_eq!(snap.counters["agent.facts.delivered"] as usize, delivered);
        // every garble event carries the question id
        for ev in sink.named("agent.channel.garble") {
            assert_eq!(ev.get("question"), Some(q.id.as_str()));
        }
    }

    /// Table III shape: the agent beats plain GPT-4o with choices and
    /// roughly ties without.
    #[test]
    fn table3_shape() {
        let bench = ChipVqa::standard();
        let challenge = bench.challenge();
        let judge = RuleJudge::new();
        let agent = AgentSystem::paper_setup();
        let gpt = VlmPipeline::new(ModelZoo::gpt4o());

        let agent_rate = |collection: &ChipVqa| -> f64 {
            let mut pass = 0usize;
            for q in collection.iter() {
                if judge.is_correct(q, &agent.answer(q, 0).text) {
                    pass += 1;
                }
            }
            pass as f64 / collection.len() as f64
        };
        let with_choice_agent = agent_rate(&bench);
        let with_choice_base = evaluate(&gpt, &bench, EvalOptions::default()).overall();
        let no_choice_agent = agent_rate(&challenge);
        let no_choice_base = evaluate(&gpt, &challenge, EvalOptions::default()).overall();

        assert!(
            with_choice_agent > with_choice_base,
            "agent must help with choices: {with_choice_agent} vs {with_choice_base}"
        );
        assert!(
            (no_choice_agent - no_choice_base).abs() < 0.06,
            "agent roughly neutral without choices: {no_choice_agent} vs {no_choice_base}"
        );
    }
}

//! Tool-call transcripts, for inspection and the `agent_trace` example.

use serde::{Deserialize, Serialize};

/// One planner↔tool exchange.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TurnRecord {
    /// Round index (0-based).
    pub round: u32,
    /// The planner's request.
    pub request: String,
    /// The tool's description.
    pub description: String,
    /// New facts that survived the channel this round.
    pub facts_delivered: usize,
}

/// A full conversation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Transcript {
    /// Turns in order.
    pub turns: Vec<TurnRecord>,
}

impl Transcript {
    /// Appends a turn.
    pub fn push(&mut self, turn: TurnRecord) {
        self.turns.push(turn);
    }

    /// Number of tool-call rounds.
    pub fn rounds(&self) -> usize {
        self.turns.len()
    }

    /// Total facts delivered across rounds.
    pub fn total_facts(&self) -> usize {
        self.turns.iter().map(|t| t.facts_delivered).sum()
    }

    /// Renders the conversation for terminal display.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for t in &self.turns {
            s.push_str(&format!("[designer, round {}] {}\n", t.round, t.request));
            s.push_str(&format!(
                "[vision tool]        {} (+{} facts)\n",
                t.description, t.facts_delivered
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_renders() {
        let mut t = Transcript::default();
        t.push(TurnRecord {
            round: 0,
            request: "Describe the figure.".into(),
            description: "A schematic with gm=2mS.".into(),
            facts_delivered: 2,
        });
        t.push(TurnRecord {
            round: 1,
            request: "More detail.".into(),
            description: "RD=10k.".into(),
            facts_delivered: 1,
        });
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.total_facts(), 3);
        let r = t.render();
        assert!(r.contains("round 0"));
        assert!(r.contains("vision tool"));
    }
}

//! Dataset explorer: print Table-I statistics, export the collection to
//! JSON, round-trip it, and preview any question's visual as ASCII art.
//!
//! ```text
//! cargo run --release --example dataset_explorer -- physical-000
//! cargo run --release --example dataset_explorer -- digital-000 --pgm /tmp/q.pgm
//! cargo run --release --example dataset_explorer -- digital-035 --scale 3
//! ```
//!
//! `--scale N` explores the N×-scaled collection (`DatasetSpec`), whose
//! replica ids continue past the standard block (digital-035, …).

use chipvqa::core::stats::DatasetStats;
use chipvqa::core::{ChipVqa, DatasetSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let scale: usize = match args.iter().position(|a| a == "--scale") {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .expect("--scale takes a positive integer"),
        None => 1,
    };
    let bench = if scale > 1 {
        let spec = DatasetSpec::scaled(scale);
        println!("scaled {scale}x: {} questions\n", spec.total());
        spec.build()
    } else {
        ChipVqa::standard()
    };
    println!("{}", DatasetStats::compute(&bench));

    // JSON round-trip (images regenerate from the recorded seed).
    let json = bench.to_json()?;
    println!("JSON export: {} bytes of metadata", json.len());
    let back = ChipVqa::from_json(&json)?;
    assert_eq!(back.len(), bench.len());
    println!(
        "round-trip restored {} questions with visuals regenerated\n",
        back.len()
    );

    let id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "digital-003".into());
    match bench.get(&id) {
        Some(q) => {
            println!(
                "[{}] {} / {} / {}",
                q.id,
                q.category,
                q.visual_kind,
                if q.is_multiple_choice() {
                    "multiple choice"
                } else {
                    "short answer"
                }
            );
            println!("prompt: {}\n", q.full_prompt());
            println!("gold: {}\n", q.golden_text());
            println!(
                "visual ({}x{} px, {} marks):",
                q.visual.image.width(),
                q.visual.image.height(),
                q.visual.marks.len()
            );
            println!("{}", q.visual.image.to_ascii(8));
            // optional PGM export: `-- <id> --pgm <path>`
            let args: Vec<String> = std::env::args().collect();
            if let Some(i) = args.iter().position(|a| a == "--pgm") {
                if let Some(path) = args.get(i + 1) {
                    let mut file = std::fs::File::create(path)?;
                    q.visual.image.write_pgm(&mut file)?;
                    println!(
                        "wrote {path} ({}x{} PGM)",
                        q.visual.image.width(),
                        q.visual.image.height()
                    );
                }
            }
        }
        None => {
            eprintln!("no question '{id}'; ids look like digital-000, analog-017, …");
            std::process::exit(2);
        }
    }
    Ok(())
}

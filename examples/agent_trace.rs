//! Agent trace: watch the §IV-C chip-designer/vision-tool conversation on
//! a few questions, including one the planner answers better than the
//! grounded model and one where the lossy description channel hurts.
//!
//! ```text
//! cargo run --release --example agent_trace
//! ```

use chipvqa::agent::AgentSystem;
use chipvqa::core::ChipVqa;
use chipvqa::eval::{Judge, RuleJudge};
use chipvqa::models::{ModelZoo, VlmPipeline};

fn main() {
    let bench = ChipVqa::standard();
    let agent = AgentSystem::paper_setup();
    let base = VlmPipeline::new(ModelZoo::gpt4o());
    let judge = RuleJudge::new();

    for id in ["physical-000", "manuf-000", "arch-005"] {
        let q = bench.get(id).expect("canonical ids exist");
        println!("================================================================");
        println!(
            "[{}] {}",
            q.id,
            q.prompt.chars().take(180).collect::<String>()
        );
        let out = agent.answer(q, 0);
        print!("{}", out.transcript.render());
        println!("[designer, final]    {}", out.text);
        let agent_ok = judge.is_correct(q, &out.text);
        let base_resp = base.infer(q, 1, 0);
        let base_ok = judge.is_correct(q, &base_resp.text);
        println!(
            "verdicts: agent {} | plain GPT-4o {} (answered: {})",
            if agent_ok { "CORRECT" } else { "wrong" },
            if base_ok { "CORRECT" } else { "wrong" },
            base_resp.text
        );
        println!();
    }
}

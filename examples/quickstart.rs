//! Quickstart: build the benchmark, run one model on a few questions and
//! watch the Fig. 2 pipeline stages (encoder → projector → backbone) in
//! action.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chipvqa::core::stats::DatasetStats;
use chipvqa::core::ChipVqa;
use chipvqa::eval::{Judge, RuleJudge};
use chipvqa::models::{ModelZoo, VlmPipeline};

fn main() {
    let bench = ChipVqa::standard();
    let stats = DatasetStats::compute(&bench);
    println!(
        "ChipVQA standard collection: {} questions ({} MC / {} SA)\n",
        stats.total, stats.multiple_choice, stats.short_answer
    );

    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let judge = RuleJudge::new();
    println!(
        "Running {} on three sample questions:\n",
        pipe.profile().name
    );

    for id in ["digital-000", "analog-000", "manuf-000"] {
        let q = bench.get(id).expect("canonical ids exist");
        println!("[{}] ({} / {})", q.id, q.category, q.visual_kind);
        let prompt = q.full_prompt();
        let head: String = prompt.chars().take(300).collect();
        println!("  Q: {head}{}", if prompt.len() > 300 { "…" } else { "" });

        // Fig. 2 staged trace: what the encoder extracted, then the answer.
        let resp = pipe.infer(q, 1, 0);
        println!(
            "  [encoder]  perceived {}/{} key facts",
            resp.percept.perceived.len(),
            resp.percept.required
        );
        println!(
            "  [projector] visual tokens joined with {} prompt chars",
            prompt.len()
        );
        println!("  [backbone]  answered: {}", resp.text);
        let verdict = judge.is_correct(q, &resp.text);
        println!(
            "  gold: {} -> judged {}\n",
            q.golden_text(),
            if verdict { "CORRECT" } else { "wrong" }
        );
    }

    println!("visual of digital-000 (state table), ASCII preview:");
    let q = bench.get("digital-000").expect("exists");
    println!("{}", q.visual.image.to_ascii(8));
}

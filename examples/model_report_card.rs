//! Model report card: evaluate one zoo model (default GPT-4o, or pass a
//! name) on the standard and challenge collections with per-category and
//! per-visual-kind breakdowns.
//!
//! ```text
//! cargo run --release --example model_report_card -- LLaVA-7b
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use chipvqa::core::question::{Category, VisualKind};
use chipvqa::core::ChipVqa;
use chipvqa::eval::harness::EvalOptions;
use chipvqa::eval::{AnswerCache, ParallelExecutor};
use chipvqa::models::{ModelZoo, VlmPipeline};

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "GPT4o".into());
    let profile = ModelZoo::all()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| {
            eprintln!("unknown model '{wanted}', available:");
            for p in ModelZoo::all() {
                eprintln!("  {}", p.name);
            }
            std::process::exit(2);
        });

    println!(
        "report card: {} ({}B params, {}px encoder)\n",
        profile.name, profile.params_b, profile.encoder_resolution
    );

    let bench = ChipVqa::standard();
    let challenge = bench.challenge();
    let pipe = VlmPipeline::new(profile);

    // Work-stealing evaluation with a shared answer cache: reports are
    // identical to sequential `evaluate`, and the pass@k sweep below
    // reuses every answer already inferred for a smaller k.
    let cache = Arc::new(AnswerCache::new());
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let exec = ParallelExecutor::new(workers).with_cache(Arc::clone(&cache));

    let std_report = exec.evaluate(&pipe, &bench, EvalOptions::default());
    let chal_report = exec.evaluate(&pipe, &challenge, EvalOptions::default());

    println!("{:<16} {:>10} {:>10}", "category", "standard", "challenge");
    for cat in Category::ALL {
        println!(
            "{:<16} {:>10.2} {:>10.2}",
            cat.label(),
            std_report.category_rate(cat),
            chal_report.category_rate(cat)
        );
    }
    println!(
        "{:<16} {:>10.2} {:>10.2}\n",
        "all",
        std_report.overall(),
        chal_report.overall()
    );

    // per visual kind on the standard collection
    let mut by_kind: BTreeMap<VisualKind, (usize, usize)> = BTreeMap::new();
    for (q, o) in bench.iter().zip(&std_report.outcomes) {
        let e = by_kind.entry(q.visual_kind).or_default();
        e.1 += 1;
        if o.passed {
            e.0 += 1;
        }
    }
    println!("{:<16} {:>8} {:>8}", "visual kind", "passed", "total");
    for (kind, (pass, total)) in by_kind {
        println!("{:<16} {:>8} {:>8}", kind.label(), pass, total);
    }

    // how the standard-collection answers came about
    let (solved, guessed, failed) = std_report.path_histogram();
    println!("\nanswer paths (standard): {solved} solved, {guessed} guessed, {failed} failed");

    // pass@k scaling (cache hits grow with k: attempts 0..k-1 of the
    // previous sweep are reused verbatim)
    println!("\npass@k on the standard collection:");
    for k in [1u64, 3, 5] {
        let r = exec.evaluate(
            &pipe,
            &bench,
            EvalOptions {
                attempts: k,
                downsample: 1,
            },
        );
        println!("  pass@{k} = {:.2}", r.overall());
    }

    println!(
        "\nanswer cache: {} entries, {} hits / {} misses",
        cache.len(),
        cache.hits(),
        cache.misses()
    );
}

//! T-chaos: supervised execution under seeded fault injection.
//!
//! Three properties from the robustness issue, checked end-to-end:
//!
//! 1. the **all-zero** [`FaultPlan`] reproduces today's clean reports
//!    byte-for-byte for every zoo model (supervision is free when
//!    nothing fails);
//! 2. **any** seeded plan yields identical reports for 1, 2 and 8
//!    workers (fault draws are keyed on call identity, never on
//!    scheduling);
//! 3. coverage accounting always closes: answered + failed +
//!    breaker-skipped = N for every model, at the standard N = 142 and
//!    on [`DatasetSpec`]-scaled collections.
//!
//! `CHIPVQA_CHAOS_SEED` (used by the CI chaos matrix) perturbs the
//! injected plans without touching the proptest case generator, so each
//! CI seed explores a different storm while staying reproducible.

use chipvqa::core::{ChipVqa, DatasetSpec};
use chipvqa::eval::fault::{install_quiet_panic_hook, is_corrupted_text};
use chipvqa::eval::harness::{evaluate, EvalOptions};
use chipvqa::eval::store::{decode_segment, AnswerStore};
use chipvqa::eval::supervisor::EvalError;
use chipvqa::eval::{AnswerCache, Checkpoint, FaultPlan, ParallelExecutor, RuleJudge, Supervisor};
use chipvqa::models::{ModelZoo, VlmPipeline};
use proptest::prelude::*;
use std::sync::Arc;

/// CI chaos-matrix seed; defaults to a fixed value locally.
fn chaos_seed() -> u64 {
    std::env::var("CHIPVQA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_806)
}

#[test]
fn zero_fault_plan_is_byte_identical_for_all_zoo_models() {
    let bench = ChipVqa::standard();
    for profile in ModelZoo::all() {
        let pipe = VlmPipeline::new(profile);
        let clean = evaluate(&pipe, &bench, EvalOptions::default());
        let supervised = ParallelExecutor::new(4)
            .with_supervisor(Supervisor::new(FaultPlan::none()))
            .evaluate(&pipe, &bench, EvalOptions::default());
        assert_eq!(clean, supervised, "{}", pipe.profile().name);
        assert_eq!(
            serde_json::to_string(&clean).expect("serialize"),
            serde_json::to_string(&supervised).expect("serialize"),
            "{}: supervised zero-fault run must serialize byte-identically",
            pipe.profile().name
        );
        assert!(!supervised.is_degraded());
        assert_eq!(supervised.answered(), bench.len());
        assert_eq!(supervised.failed() + supervised.breaker_skipped(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Property 2: the same storm hits the same calls no matter how the
    /// questions are scheduled across workers.
    #[test]
    fn seeded_plans_are_worker_count_invariant(
        seed in 0u64..1_000_000,
        rate in 0.005f64..0.05,
    ) {
        install_quiet_panic_hook();
        let bench = ChipVqa::standard();
        let pipe = VlmPipeline::new(ModelZoo::llava_34b());
        let plan = FaultPlan::uniform(seed ^ chaos_seed(), rate);
        let run = |workers: usize| {
            ParallelExecutor::new(workers)
                .with_supervisor(Supervisor::new(plan.clone()))
                .evaluate(&pipe, &bench, EvalOptions::default())
        };
        let reference = run(1);
        for workers in [2usize, 8] {
            let par = run(workers);
            prop_assert_eq!(&reference, &par, "workers = {}", workers);
        }
        prop_assert_eq!(
            reference.answered() + reference.failed() + reference.breaker_skipped(),
            bench.len()
        );
    }

    /// Property 3: accounting closes under heavier storms, including a
    /// fully broken backend, per model *and* per category. The
    /// invariant is sum-to-N, not sum-to-142: a scaled collection must
    /// account for every one of its questions the same way.
    #[test]
    fn accounting_always_sums_to_bench_len(
        seed in 0u64..1_000_000,
        rate in 0.02f64..0.12,
        scale in 1usize..3,
    ) {
        install_quiet_panic_hook();
        let bench = DatasetSpec::scaled(scale).build();
        prop_assert_eq!(bench.len(), scale * 142);
        let pipes: Vec<VlmPipeline> = [ModelZoo::phi3_vision(), ModelZoo::paligemma()]
            .into_iter()
            .map(VlmPipeline::new)
            .collect();
        let plan = FaultPlan::uniform(seed ^ chaos_seed(), rate / 6.0)
            .with_broken_model(pipes[1].fingerprint());
        let exec = ParallelExecutor::new(4).with_supervisor(Supervisor::new(plan));
        let reports = exec.evaluate_grid(&pipes, &bench, EvalOptions::default(), &RuleJudge::new());
        for report in &reports {
            prop_assert_eq!(
                report.answered() + report.failed() + report.breaker_skipped(),
                bench.len(),
                "{} does not account for every question",
                report.model
            );
            let by_cat = report.category_accounting();
            let total: usize = by_cat.values().map(|(a, f, s)| a + f + s).sum();
            prop_assert_eq!(total, bench.len(), "{} category accounting leaks", report.model);
        }
        // the broken model is shed, not silently scored
        prop_assert!(reports[1].breaker_skipped() > 0);
        prop_assert_eq!(reports[1].answered(), 0);
    }
}

#[test]
fn store_backed_storm_heals_and_never_persists_faulted_answers() {
    // The persistent tier under chaos: a supervised storm writing
    // through to an on-disk store must (1) keep every segment free of
    // corrupted answers — the fault markers must never reach disk —
    // and (2) heal: a calm warm-started run over the same store
    // converges to the clean report byte-for-byte, with the storm's
    // clean answers served from disk instead of re-inferred.
    install_quiet_panic_hook();
    let dir = std::env::temp_dir().join(format!(
        "chipvqa-chaos-store-{}-{}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::neva_22b());
    let clean = evaluate(&pipe, &bench, EvalOptions::default());

    // storm pass, write-behind to the store
    let plan = FaultPlan::uniform(chaos_seed(), 0.08);
    {
        let store = Arc::new(AnswerStore::open(&dir).expect("store opens"));
        let cache = Arc::new(AnswerCache::new().with_store(store));
        let stormy = ParallelExecutor::new(4)
            .with_supervisor(Supervisor::new(plan.clone()))
            .with_cache(cache);
        let degraded = stormy.evaluate(&pipe, &bench, EvalOptions::default());
        assert!(
            degraded.failed() + degraded.breaker_skipped() > 0 || degraded == clean,
            "either the storm hit something or the run is already clean"
        );
    }

    // every record of every segment carries a clean answer
    let reader = AnswerStore::open_read_only(&dir).expect("reader opens");
    let mut records = 0usize;
    for seg in reader.segment_paths() {
        let (decoded, _) = decode_segment(&seg).expect("segment decodes");
        for record in decoded {
            records += 1;
            assert!(
                !is_corrupted_text(&record.answer.text),
                "faulted answer persisted in {}: {:?}",
                seg.display(),
                record.answer.text
            );
        }
    }
    assert!(records > 0, "the storm still persisted its clean answers");
    drop(reader);

    // calm warm start over the same store heals to the clean report
    let store = Arc::new(AnswerStore::open(&dir).expect("store reopens"));
    let cache = Arc::new(AnswerCache::new().with_store(store));
    let calm = ParallelExecutor::new(4).with_cache(Arc::clone(&cache));
    let mut healed = calm.evaluate(&pipe, &bench, EvalOptions::default());
    assert_eq!(healed, clean, "persistence plus a calm pass heals");
    assert!(!healed.is_degraded());
    let stats = healed.cache_stats.take().expect("cache attached");
    assert!(
        stats.store_hits > 0,
        "the storm's clean answers warm-start the healing run"
    );
    assert_eq!(
        serde_json::to_string(&healed).expect("serialize"),
        serde_json::to_string(&clean).expect("serialize"),
        "healed report serializes byte-identically (modulo run metadata)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panic_quarantine_then_requeue_resumes_to_a_clean_report() {
    install_quiet_panic_hook();
    let bench = ChipVqa::standard();
    let pipes = vec![VlmPipeline::new(ModelZoo::neva_22b())];
    let options = EvalOptions::default();
    let clean = evaluate(&pipes[0], &bench, options);

    // storm pass: only panics, so every non-panicked outcome is clean
    let plan = FaultPlan {
        panic_rate: 0.08,
        ..FaultPlan::none()
    };
    let stormy = ParallelExecutor::new(4).with_supervisor(Supervisor::new(plan));
    let mut ckpt = Checkpoint::new(&pipes, &bench, options);
    let degraded = stormy
        .evaluate_grid_resumable(&pipes, &bench, options, &RuleJudge::new(), &mut ckpt, None)
        .expect("compatible checkpoint")
        .expect("no budget, runs to completion");
    let panicked = degraded[0]
        .outcomes
        .iter()
        .filter(|o| o.error == Some(EvalError::WorkerPanic))
        .count();
    assert!(panicked > 0, "the storm must hit something");
    assert!(ckpt.quarantined_shards() > 0, "panicked shards quarantined");

    // operator fixes the environment: requeue and resume without faults
    let requeued = ckpt.requeue_quarantined();
    assert!(requeued > 0);
    assert_eq!(ckpt.quarantined_shards(), 0);
    let calm = ParallelExecutor::new(4);
    let recovered = calm
        .evaluate_grid_resumable(&pipes, &bench, options, &RuleJudge::new(), &mut ckpt, None)
        .expect("compatible checkpoint")
        .expect("runs to completion");
    assert_eq!(recovered[0], clean, "requeued shards heal the report");
    assert!(!recovered[0].is_degraded());
}

#[test]
fn scaled_quarantine_and_requeue_heal_a_1420_question_storm() {
    // The quarantine/requeue cycle must work at scale, not just on the
    // 142-question standard bench: a panic storm over a 10×-scaled
    // collection is quarantined shard-by-shard, and a calm resume from
    // the spec-bound checkpoint heals to the clean report exactly.
    install_quiet_panic_hook();
    let spec = DatasetSpec::scaled(10);
    let bench = spec.build();
    assert_eq!(bench.len(), 1420);
    let pipes = vec![VlmPipeline::new(ModelZoo::neva_22b())];
    let options = EvalOptions::default();
    let clean = ParallelExecutor::new(4).evaluate(&pipes[0], &bench, options);

    let plan = FaultPlan {
        panic_rate: 0.02,
        ..FaultPlan::none()
    };
    let stormy = ParallelExecutor::new(4).with_supervisor(Supervisor::new(plan));
    let mut ckpt = Checkpoint::for_spec(&pipes, &bench, options, &spec);
    ckpt.validate_for_spec(&pipes, &bench, options, &spec)
        .expect("freshly taken checkpoint matches its own spec");
    let degraded = stormy
        .evaluate_grid_resumable(&pipes, &bench, options, &RuleJudge::new(), &mut ckpt, None)
        .expect("compatible checkpoint")
        .expect("no budget, runs to completion");
    let panicked = degraded[0]
        .outcomes
        .iter()
        .filter(|o| o.error == Some(EvalError::WorkerPanic))
        .count();
    assert!(panicked > 0, "the storm must hit something at N = 1420");
    assert!(ckpt.quarantined_shards() > 0, "panicked shards quarantined");
    assert_eq!(
        degraded[0].answered() + degraded[0].failed() + degraded[0].breaker_skipped(),
        bench.len(),
        "degraded accounting closes at scale"
    );

    // a checkpoint taken for this spec refuses to resume another one
    assert!(ckpt
        .validate_for_spec(
            &pipes,
            &bench,
            options,
            &spec.clone().with_seed(spec.seed + 1)
        )
        .is_err());

    let requeued = ckpt.requeue_quarantined();
    assert!(requeued > 0);
    assert_eq!(ckpt.quarantined_shards(), 0);
    let recovered = ParallelExecutor::new(4)
        .evaluate_grid_resumable(&pipes, &bench, options, &RuleJudge::new(), &mut ckpt, None)
        .expect("compatible checkpoint")
        .expect("runs to completion");
    assert_eq!(
        recovered[0], clean,
        "requeued shards heal the scaled report"
    );
    assert!(!recovered[0].is_degraded());
}

#[test]
fn streamed_accounting_closes_at_scale_10() {
    // Property 3 on the streaming intake path at N = 1420: a supervised
    // streamed run over a 10×-scaled spec accounts for every question,
    // never materializing the collection.
    install_quiet_panic_hook();
    let spec = DatasetSpec::scaled(10);
    let plan = FaultPlan::uniform(chaos_seed(), 0.02);
    let exec = ParallelExecutor::new(4).with_supervisor(Supervisor::new(plan));
    let pipe = VlmPipeline::new(ModelZoo::phi3_vision());
    let (report, stats) = exec.evaluate_spec_stream(&pipe, &spec, 142, EvalOptions::default());
    assert_eq!(spec.total(), 1420);
    assert_eq!(
        report.answered() + report.failed() + report.breaker_skipped(),
        1420,
        "streamed accounting leaks at scale"
    );
    assert_eq!(stats.questions, 1420);
    let by_cat = report.category_accounting();
    let total: usize = by_cat.values().map(|(a, f, s)| a + f + s).sum();
    assert_eq!(total, 1420, "streamed category accounting leaks at scale");
}

#[test]
fn scaled_streamed_quarantine_and_requeue_heal_a_1420_question_storm() {
    // The streamed twin of the scaled checkpoint test above: a panic
    // storm on the streaming path quarantines shards (counted in
    // StreamStats), and requeue_quarantined_stream re-derives exactly
    // those shards from the spec and heals the report to clean bytes.
    install_quiet_panic_hook();
    let spec = DatasetSpec::scaled(10);
    let shard_len = 142;
    let options = EvalOptions::default();
    let pipe = VlmPipeline::new(ModelZoo::neva_22b());
    let (clean, _) =
        ParallelExecutor::new(4).evaluate_spec_stream(&pipe, &spec, shard_len, options);

    let plan = FaultPlan {
        panic_rate: 0.02,
        ..FaultPlan::none()
    };
    let stormy = ParallelExecutor::new(4).with_supervisor(Supervisor::new(plan));
    let (mut report, stats) = stormy.evaluate_spec_stream(&pipe, &spec, shard_len, options);
    assert!(
        stats.quarantined_shards > 0,
        "the storm must hit something at N = 1420"
    );
    assert_eq!(
        report.answered() + report.failed() + report.breaker_skipped(),
        1420,
        "degraded streamed accounting closes at scale"
    );

    let healed = stormy.requeue_quarantined_stream(&pipe, &spec, shard_len, options, &mut report);
    assert_eq!(healed, stats.quarantined_shards);
    assert_eq!(report, clean, "requeued shards heal the streamed report");
    assert!(!report.is_degraded());
}

#[test]
fn streamed_storm_never_persists_faulted_answers_and_heals_warm() {
    // The persistent tier under streamed chaos: a supervised streamed
    // storm writing through to an on-disk store must keep every segment
    // free of fault markers, and a calm warm streamed run over the same
    // store converges to the clean report byte-for-byte with the
    // storm's clean answers served from disk.
    install_quiet_panic_hook();
    let dir = std::env::temp_dir().join(format!(
        "chipvqa-stream-chaos-store-{}-{}",
        std::process::id(),
        chaos_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = DatasetSpec::scaled(2);
    let shard_len = 17;
    let options = EvalOptions::default();
    let pipe = VlmPipeline::new(ModelZoo::neva_22b());
    let (clean, _) =
        ParallelExecutor::new(4).evaluate_spec_stream(&pipe, &spec, shard_len, options);

    // streamed storm pass, write-behind to the store
    let plan = FaultPlan::uniform(chaos_seed(), 0.08);
    {
        let store = Arc::new(AnswerStore::open(&dir).expect("store opens"));
        let cache = Arc::new(AnswerCache::new().with_store(store));
        let stormy = ParallelExecutor::new(4)
            .with_supervisor(Supervisor::new(plan))
            .with_cache(cache);
        let (degraded, _) = stormy.evaluate_spec_stream(&pipe, &spec, shard_len, options);
        let mut degraded = degraded;
        degraded.cache_stats = None;
        assert!(
            degraded.failed() + degraded.breaker_skipped() > 0 || degraded == clean,
            "either the storm hit something or the run is already clean"
        );
    }

    // every record of every segment carries a clean answer
    let reader = AnswerStore::open_read_only(&dir).expect("reader opens");
    let mut records = 0usize;
    for seg in reader.segment_paths() {
        let (decoded, _) = decode_segment(&seg).expect("segment decodes");
        for record in decoded {
            records += 1;
            assert!(
                !is_corrupted_text(&record.answer.text),
                "faulted answer persisted via streaming in {}: {:?}",
                seg.display(),
                record.answer.text
            );
        }
    }
    assert!(
        records > 0,
        "the streamed storm still persisted its clean answers"
    );
    drop(reader);

    // calm warm streamed start over the same store heals to clean bytes
    let store = Arc::new(AnswerStore::open(&dir).expect("store reopens"));
    let cache = Arc::new(AnswerCache::new().with_store(store));
    let calm = ParallelExecutor::new(4).with_cache(Arc::clone(&cache));
    let (mut healed, _) = calm.evaluate_spec_stream(&pipe, &spec, shard_len, options);
    let stats = healed.cache_stats.take().expect("cache attached");
    assert_eq!(healed, clean, "streamed persistence plus a calm pass heals");
    assert!(!healed.is_degraded());
    assert!(
        stats.store_hits > 0,
        "the streamed storm's clean answers warm-start the healing run"
    );
    assert_eq!(
        serde_json::to_string(&healed).expect("serialize"),
        serde_json::to_string(&clean).expect("serialize"),
        "healed streamed report serializes byte-identically (modulo run metadata)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

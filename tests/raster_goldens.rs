//! Pixel-golden freeze wall for the raster hot paths.
//!
//! PR 9 rewrites the `Pixmap` drawing primitives (row-sliced
//! `fill_rect`, fast axis-aligned `draw_line`, span-filled
//! `fill_circle`, block-summed `downsample`) for speed. Every one of
//! those rewrites must be *pixel-exact*: the simulated encoders measure
//! legibility from real pixels, so a single off-by-one stroke would
//! silently shift perception probabilities and with them every report
//! byte downstream. This wall pins the outputs two ways:
//!
//! 1. **Content-hash goldens** — each primitive drawn at fixed
//!    sizes/strokes (including clipped and out-of-bounds geometry) and
//!    each substrate renderer's full standard-collection output is
//!    FNV-hashed against values captured *before* the optimization.
//!    Re-capture is deliberate friction: run with
//!    `CHIPVQA_PRINT_GOLDENS=1` to print the current values.
//! 2. **Scalar-reference differential proptest** — random op sequences
//!    are driven through the optimized primitives and through scalar
//!    per-pixel reference implementations (built only from `get`/`set`),
//!    asserting byte-identical buffers.

use chipvqa::raster::{Pixmap, Region, WHITE};

/// FNV-1a over a byte stream.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Content hash of an image: dimensions plus every pixel.
fn hash_pixmap(img: &Pixmap) -> u64 {
    let dims = (img.width() as u64)
        .to_le_bytes()
        .into_iter()
        .chain((img.height() as u64).to_le_bytes());
    fnv1a(dims.chain(img.pixels().iter().copied()))
}

/// Checks `actual` against the golden table, or prints it when
/// `CHIPVQA_PRINT_GOLDENS=1` (the capture mode used to mint goldens).
fn check(name: &str, actual: u64) {
    if std::env::var("CHIPVQA_PRINT_GOLDENS").is_ok() {
        println!("    (\"{name}\", 0x{actual:016x}),");
        return;
    }
    let golden = GOLDENS
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("no golden recorded for {name}"))
        .1;
    assert_eq!(
        actual, golden,
        "{name}: pixel content drifted (got 0x{actual:016x}, frozen 0x{golden:016x})"
    );
}

/// Frozen content hashes, captured from the pre-optimization scalar
/// implementations. The optimized fast paths must reproduce every one
/// byte-for-byte.
const GOLDENS: &[(&str, u64)] = &[
    ("fill_rect", 0xcd65360eb4df759c),
    ("lines_axis", 0x55a39c14f6a45d04),
    ("lines_diagonal", 0x0adff6805222367e),
    ("dashed_line", 0x785236d786c1fddd),
    ("rect_outline", 0x10e5603719b96c08),
    ("circle_outline", 0x9cc43d47b11e5b52),
    ("fill_circle", 0xe6c0a31d19be8cce),
    ("polyline_arrow", 0x1973e23796bebae3),
    ("text", 0x767e658032331b64),
    ("composite", 0x4fd175e66449b7a6),
    ("downsample_2", 0x2c28c1099fa26a6d),
    ("downsample_3", 0x4a71409e2ca6a003),
    ("downsample_7", 0xa0f22d22a2e33850),
    ("downsample_16", 0xd9d0f8fa36d909a8),
    ("ascii", 0x16decff42ac9b811),
    ("collection_digital", 0xf6849f560a9e18d3),
    ("collection_analog", 0xb52a1358d5eb30af),
    ("collection_architecture", 0xc2c32a4320f0f46c),
    ("collection_manufacture", 0x1899135be55f9bed),
    ("collection_physical", 0xf12b705ab2809954),
];

#[test]
fn primitive_goldens_are_frozen() {
    // fill_rect: interior, clipped on every edge, fully out of bounds,
    // zero/negative extents.
    let mut img = Pixmap::new(96, 64);
    img.fill_rect(5, 7, 20, 10, 0);
    img.fill_rect(-4, -4, 12, 12, 96);
    img.fill_rect(88, 58, 20, 20, 160);
    img.fill_rect(40, -3, 6, 10, 32);
    img.fill_rect(200, 200, 5, 5, 0);
    img.fill_rect(10, 40, 0, 5, 0);
    img.fill_rect(10, 44, -3, 5, 0);
    check("fill_rect", hash_pixmap(&img));

    // axis-aligned lines at strokes 1..4, both directions of travel,
    // clipped ends.
    let mut img = Pixmap::new(96, 64);
    for (i, stroke) in [1i64, 2, 3, 4].into_iter().enumerate() {
        let y = 6 + i as i64 * 7;
        img.draw_line(4, y, 80, y, stroke, 0);
        img.draw_line(80, y + 3, 4, y + 3, stroke, 64);
    }
    img.draw_line(50, -10, 50, 80, 2, 0);
    img.draw_line(90, 60, 90, 2, 3, 32);
    check("lines_axis", hash_pixmap(&img));

    // diagonal and steep lines, both octant families.
    let mut img = Pixmap::new(96, 64);
    img.draw_line(0, 0, 95, 63, 1, 0);
    img.draw_line(0, 63, 95, 0, 2, 0);
    img.draw_line(10, 2, 20, 60, 3, 64);
    img.draw_line(-8, 30, 120, 41, 2, 32);
    check("lines_diagonal", hash_pixmap(&img));

    let mut img = Pixmap::new(96, 32);
    img.draw_dashed_line(0, 8, 95, 8, 1, 0, 4, 4);
    img.draw_dashed_line(0, 16, 95, 20, 2, 0, 3, 5);
    img.draw_dashed_line(4, 28, 90, 28, 3, 64, 6, 2);
    check("dashed_line", hash_pixmap(&img));

    let mut img = Pixmap::new(96, 64);
    img.draw_rect(4, 4, 40, 24, 1, 0);
    img.draw_rect(30, 20, 60, 60, 2, 64);
    img.draw_rect(-5, -5, 20, 20, 3, 32);
    check("rect_outline", hash_pixmap(&img));

    let mut img = Pixmap::new(96, 64);
    img.draw_circle(48, 32, 20, 1, 0);
    img.draw_circle(20, 20, 7, 2, 64);
    img.draw_circle(90, 5, 12, 3, 32);
    img.draw_circle(48, 32, 0, 1, 0);
    check("circle_outline", hash_pixmap(&img));

    let mut img = Pixmap::new(96, 64);
    img.fill_circle(30, 30, 15, 0);
    img.fill_circle(70, 10, 6, 96);
    img.fill_circle(92, 60, 10, 32);
    img.fill_circle(5, 5, 0, 0);
    img.fill_circle(50, 50, 1, 0);
    check("fill_circle", hash_pixmap(&img));

    let mut img = Pixmap::new(96, 64);
    img.draw_polyline(&[(4, 4), (40, 10), (40, 50), (90, 55)], 2, 0);
    img.draw_arrow(10, 60, 80, 20, 1, 0);
    img.draw_arrow(90, 10, 20, 12, 2, 64);
    check("polyline_arrow", hash_pixmap(&img));

    let mut img = Pixmap::new(420, 96);
    img.draw_text(2, 2, "Q+ = S'Q + SR'", 1, 0);
    img.draw_text(2, 20, "VDD GND 0123456789", 2, 0);
    img.draw_text(-6, 56, "clip {me} @ edges!", 3, 32);
    check("text", hash_pixmap(&img));
}

/// A dense scene exercising every primitive at once — the downsample
/// and ASCII goldens hang off it.
fn composite_scene() -> Pixmap {
    let mut img = Pixmap::new(300, 200);
    img.draw_rect(10, 10, 120, 80, 2, 0);
    img.draw_text(20, 24, "GAIN = 42", 2, 0);
    img.draw_line(130, 50, 290, 50, 2, 0);
    img.draw_line(40, 90, 40, 190, 1, 0);
    img.draw_circle(220, 140, 36, 2, 0);
    img.fill_circle(220, 140, 8, 0);
    img.draw_dashed_line(0, 180, 299, 180, 1, 0, 5, 3);
    img.draw_arrow(10, 120, 150, 150, 2, 0);
    img.draw_polyline(&[(160, 20), (200, 40), (240, 15), (295, 60)], 1, 0);
    img.fill_rect(260, 160, 30, 30, 128);
    img
}

#[test]
fn composite_and_downsample_goldens_are_frozen() {
    let img = composite_scene();
    check("composite", hash_pixmap(&img));
    for factor in [2usize, 3, 7, 16] {
        check(
            &format!("downsample_{factor}"),
            hash_pixmap(&img.downsample(factor)),
        );
    }
    assert_eq!(
        img.downsample(1),
        img,
        "factor 1 must be the identity clone"
    );
    check("ascii", fnv1a(img.to_ascii(4).bytes()));
}

/// Freezes every substrate renderer end-to-end: the standard collection
/// is generated and each category's visuals (pixels, mark labels and
/// mark regions) are folded into one hash. Any renderer or mark-type
/// drift — schematic, table, waveform, layout, curve, flow — lands here.
#[test]
fn standard_collection_visuals_are_frozen() {
    let bench = chipvqa::core::ChipVqa::standard();
    for cat in chipvqa::core::question::Category::ALL {
        let mut bytes: Vec<u8> = Vec::new();
        for q in bench.iter().filter(|q| q.category == cat) {
            bytes.extend_from_slice(&hash_pixmap(&q.visual.image).to_le_bytes());
            for mark in &q.visual.marks {
                bytes.extend_from_slice(mark.label.as_bytes());
                for v in [mark.region.x, mark.region.y, mark.region.w, mark.region.h] {
                    bytes.extend_from_slice(&(v as u64).to_le_bytes());
                }
            }
            bytes.extend_from_slice(&(q.visual.image.ink_pixels() as u64).to_le_bytes());
        }
        let name = format!("collection_{}", format!("{cat:?}").to_lowercase());
        check(&name, fnv1a(bytes));
    }
}

// ---------------------------------------------------------------------------
// Scalar reference implementations: the pre-optimization per-pixel
// loops, rebuilt on top of nothing but `get`/`set` so they cannot share
// a fast path with the code under test.
// ---------------------------------------------------------------------------

fn ref_fill_rect(img: &mut Pixmap, x: i64, y: i64, w: i64, h: i64, shade: u8) {
    for yy in y..y + h {
        for xx in x..x + w {
            img.set(xx, yy, shade);
        }
    }
}

fn ref_stamp(img: &mut Pixmap, x: i64, y: i64, stroke: i64, shade: u8) {
    let s = stroke.max(1);
    let half = (s - 1) / 2;
    ref_fill_rect(img, x - half, y - half, s, s, shade);
}

fn ref_draw_line(img: &mut Pixmap, x0: i64, y0: i64, x1: i64, y1: i64, stroke: i64, shade: u8) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        ref_stamp(img, x, y, stroke, shade);
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

fn ref_fill_circle(img: &mut Pixmap, cx: i64, cy: i64, r: i64, shade: u8) {
    for yy in -r..=r {
        for xx in -r..=r {
            if xx * xx + yy * yy <= r * r {
                img.set(cx + xx, cy + yy, shade);
            }
        }
    }
}

fn ref_downsample(img: &Pixmap, factor: usize) -> Vec<u8> {
    let nw = img.width().div_ceil(factor);
    let nh = img.height().div_ceil(factor);
    let mut out = vec![WHITE; nw * nh];
    for by in 0..nh {
        for bx in 0..nw {
            let mut sum = 0u64;
            let mut count = 0u64;
            for yy in by * factor..((by + 1) * factor).min(img.height()) {
                for xx in bx * factor..((bx + 1) * factor).min(img.width()) {
                    sum += u64::from(img.pixels()[yy * img.width() + xx]);
                    count += 1;
                }
            }
            out[by * nw + bx] = (sum / count.max(1)) as u8;
        }
    }
    out
}

fn ref_ink_fraction(img: &Pixmap, region: Region) -> f64 {
    let x1 = region.x.min(img.width());
    let y1 = region.y.min(img.height());
    let x2 = (region.x + region.w).min(img.width());
    let y2 = (region.y + region.h).min(img.height());
    let area = (x2 - x1) * (y2 - y1);
    if area == 0 {
        return 0.0;
    }
    let mut ink = 0usize;
    for y in y1..y2 {
        for x in x1..x2 {
            if img.pixels()[y * img.width() + x] < chipvqa::raster::INK_THRESHOLD {
                ink += 1;
            }
        }
    }
    ink as f64 / area as f64
}

mod differential {
    use super::*;
    use proptest::prelude::*;

    /// One random drawing op, applied identically to both images.
    fn apply(op: u8, a: i64, b: i64, c: i64, d: i64, fast: &mut Pixmap, slow: &mut Pixmap) {
        match op {
            0 => {
                fast.fill_rect(a, b, c, d, 0);
                ref_fill_rect(slow, a, b, c, d, 0);
            }
            1 => {
                let stroke = 1 + (c.rem_euclid(4));
                fast.draw_line(a, b, c, d, stroke, 0);
                ref_draw_line(slow, a, b, c, d, stroke, 0);
            }
            2 => {
                // axis-aligned: the optimized code has dedicated fast paths
                fast.draw_line(a, b, c, b, 2, 32);
                ref_draw_line(slow, a, b, c, b, 2, 32);
            }
            3 => {
                fast.draw_line(a, b, a, d, 3, 32);
                ref_draw_line(slow, a, b, a, d, 3, 32);
            }
            _ => {
                let r = c.rem_euclid(24);
                fast.fill_circle(a, b, r, 0);
                ref_fill_circle(slow, a, b, r, 0);
            }
        }
    }

    proptest! {
        /// Optimized primitives == scalar reference, pixel for pixel,
        /// under arbitrary (including out-of-range) op sequences.
        #[test]
        fn optimized_ops_match_scalar_reference(
            ops in proptest::collection::vec(
                (0u8..5, -40i64..160, -40i64..160, -40i64..160, -40i64..160),
                1..32,
            ),
        ) {
            let mut fast = Pixmap::new(120, 80);
            let mut slow = Pixmap::new(120, 80);
            for (op, a, b, c, d) in ops {
                apply(op, a, b, c, d, &mut fast, &mut slow);
            }
            prop_assert_eq!(fast.pixels(), slow.pixels());
        }

        /// Optimized downsample == scalar block-mean reference for every
        /// factor, including ragged edges.
        #[test]
        fn optimized_downsample_matches_reference(
            w in 1usize..90,
            h in 1usize..70,
            factor in 1usize..20,
            ops in proptest::collection::vec(
                (-20i64..100, -20i64..100, -20i64..100, -20i64..100),
                0..10,
            ),
        ) {
            let mut img = Pixmap::new(w, h);
            for (a, b, c, d) in ops {
                img.draw_line(a, b, c, d, 2, 0);
                img.fill_rect(c, d, a.rem_euclid(30), b.rem_euclid(30), 128);
            }
            let fast = img.downsample(factor);
            let slow = ref_downsample(&img, factor);
            prop_assert_eq!(fast.pixels(), &slow[..]);
            prop_assert_eq!(fast.width(), img.width().div_ceil(factor));
            prop_assert_eq!(fast.height(), img.height().div_ceil(factor));
        }

        /// Row-sliced ink scans == scalar reference (fraction and count).
        #[test]
        fn optimized_ink_scans_match_reference(
            rx in 0usize..140,
            ry in 0usize..100,
            rw in 0usize..140,
            rh in 0usize..100,
            ops in proptest::collection::vec(
                (-20i64..150, -20i64..110, -20i64..150, -20i64..110),
                0..8,
            ),
        ) {
            let mut img = Pixmap::new(128, 96);
            for (a, b, c, d) in ops {
                img.draw_line(a, b, c, d, 3, 0);
            }
            let region = Region::new(rx, ry, rw, rh);
            prop_assert_eq!(img.ink_fraction(region), ref_ink_fraction(&img, region));
            let scalar_count = img
                .pixels()
                .iter()
                .filter(|&&p| p < chipvqa::raster::INK_THRESHOLD)
                .count();
            prop_assert_eq!(img.ink_pixels(), scalar_count);
        }
    }
}

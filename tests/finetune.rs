//! End-to-end fine-tuning study (the paper's future-work direction):
//! adapt a weak open model on one generated ChipVQA instance and measure
//! it on the held-out canonical instance.

use chipvqa::core::ChipVqa;
use chipvqa::eval::harness::{evaluate, EvalOptions};
use chipvqa::models::finetune::{finetune, FinetuneConfig};
use chipvqa::models::{ModelZoo, VlmPipeline};

#[test]
fn finetuned_model_improves_held_out_challenge_rate() {
    let train_bench = ChipVqa::with_seed(20_250_701);
    let eval_bench = ChipVqa::standard().challenge();
    let base = ModelZoo::llava_7b();
    let (ft, report) = finetune(
        &base,
        &train_bench.iter().collect::<Vec<_>>(),
        FinetuneConfig::default(),
    );
    assert_eq!(report.examples.iter().sum::<usize>(), 142);

    let before = evaluate(&VlmPipeline::new(base), &eval_bench, EvalOptions::default()).overall();
    let after = evaluate(&VlmPipeline::new(ft), &eval_bench, EvalOptions::default()).overall();
    assert!(
        after > before + 0.05,
        "fine-tune must lift the held-out challenge rate: {before} -> {after}"
    );
}

#[test]
fn finetuned_open_model_narrows_the_gpt4o_gap() {
    let train = ChipVqa::with_seed(99);
    let eval_bench = ChipVqa::standard();
    let base = ModelZoo::llava_34b();
    let (ft, _) = finetune(
        &base,
        &train.iter().collect::<Vec<_>>(),
        FinetuneConfig::default(),
    );
    let gpt = evaluate(
        &VlmPipeline::new(ModelZoo::gpt4o()),
        &eval_bench,
        EvalOptions::default(),
    )
    .overall();
    let base_rate =
        evaluate(&VlmPipeline::new(base), &eval_bench, EvalOptions::default()).overall();
    let ft_rate = evaluate(&VlmPipeline::new(ft), &eval_bench, EvalOptions::default()).overall();
    assert!(ft_rate > base_rate, "{ft_rate} vs {base_rate}");
    assert!(
        gpt - ft_rate < gpt - base_rate,
        "the gap must narrow: gpt {gpt}, base {base_rate}, ft {ft_rate}"
    );
}

#[test]
fn data_scaling_curve_is_monotone() {
    let train = ChipVqa::with_seed(5);
    let eval_bench = ChipVqa::standard().challenge();
    let all: Vec<&chipvqa::core::Question> = train.iter().collect();
    let mut last = 0.0;
    for n in [0usize, 30, 80, 142] {
        let (model, _) = finetune(&ModelZoo::llava_7b(), &all[..n], FinetuneConfig::default());
        let rate = evaluate(
            &VlmPipeline::new(model),
            &eval_bench,
            EvalOptions::default(),
        )
        .overall();
        assert!(
            rate >= last - 0.03,
            "more data should not hurt much: {n} examples -> {rate} (prev {last})"
        );
        last = last.max(rate);
    }
}

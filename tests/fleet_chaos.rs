//! T-fleet-chaos: crash-tolerant multi-process fleet execution under
//! seeded `kill -9` schedules.
//!
//! The determinism contract from the robustness issue, checked
//! end-to-end:
//!
//! 1. for **any worker count** (1, 2, 4 cooperating workers) the merged
//!    report is byte-identical to a single-process grid evaluation;
//! 2. for **any kill schedule** — real `kill -9`'d subprocess workers,
//!    leases left mid-flight — the survivors steal exactly the
//!    orphaned leases (`fleet.lease.steal` telemetry counts match),
//!    heal the dead workers' quarantined shards, and the merge is still
//!    byte-identical, with the shared `AnswerStore` free of corrupted
//!    or conflicting records (the chaos storm scan, extended to the
//!    fleet's shared store);
//! 3. a **stalled** live worker (heartbeat frozen) loses its lease too;
//! 4. `merge` refuses mismatched spec fingerprints, store generations,
//!    and incomplete fleets with structured errors.
//!
//! Subprocess workers re-exec this test binary: the
//! `fleet_worker_subprocess_entry` "test" is a no-op unless
//! `CHIPVQA_FLEET_WORKER_DIR` is set, in which case it joins the fleet
//! at that directory and exits. `CHIPVQA_CHAOS_SEED` (the CI chaos
//! matrix) perturbs the kill schedule while staying reproducible.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chipvqa::core::ChipVqa;
use chipvqa::eval::fault::install_quiet_panic_hook;
use chipvqa::eval::fleet::{
    self, done_path, lease_path, quarantine_path, shard_plan, FleetConfig, FleetError, FleetJob,
    Lease, ShardRecord,
};
use chipvqa::eval::harness::{EvalOptions, EvalReport};
use chipvqa::eval::store::{decode_segment, AnswerStore, StoreConfig};
use chipvqa::eval::{AnswerCache, Checkpoint, FaultPlan, ParallelExecutor, RuleJudge, Supervisor};
use chipvqa::models::{ModelZoo, VlmPipeline};
use chipvqa::telemetry::{MemorySink, MockClock, Telemetry};

/// CI chaos-matrix seed; defaults to a fixed value locally.
fn chaos_seed() -> u64 {
    std::env::var("CHIPVQA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_806)
}

fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "chipvqa-fleet-chaos-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The chaos grid: two models over the standard bench — 18 shards,
/// enough for real contention, small enough for CI.
fn grid() -> (Vec<VlmPipeline>, ChipVqa) {
    (
        vec![
            VlmPipeline::new(ModelZoo::gpt4o()),
            VlmPipeline::new(ModelZoo::fuyu_8b()),
        ],
        ChipVqa::standard(),
    )
}

fn job<'a>(pipes: &'a [VlmPipeline], bench: &'a ChipVqa, store_gen: Option<u64>) -> FleetJob<'a> {
    FleetJob {
        pipes,
        bench,
        options: EvalOptions::default(),
        spec_fingerprint: None,
        store_generation: store_gen,
    }
}

/// Result bytes of a report with the run-metadata `cache_stats` nulled.
fn report_bytes(mut report: EvalReport) -> String {
    report.cache_stats = None;
    serde_json::to_string(&report).expect("report serializes")
}

/// The single-process reference: a plain grid evaluation, serialized.
fn reference_bytes(pipes: &[VlmPipeline], bench: &ChipVqa) -> Vec<String> {
    ParallelExecutor::new(4)
        .evaluate_grid(pipes, bench, EvalOptions::default(), &RuleJudge::new())
        .into_iter()
        .map(report_bytes)
        .collect()
}

fn merged_bytes(dir: &Path, job: &FleetJob<'_>) -> Vec<String> {
    fleet::merge(dir, job, &Telemetry::disabled())
        .expect("fleet merges")
        .into_iter()
        .map(report_bytes)
        .collect()
}

/// Contract 1: 1, 2, and 4 cooperating in-process workers all converge
/// to the single-process reference, byte for byte.
#[test]
fn fleets_of_1_2_and_4_workers_merge_byte_identical_to_single_process() {
    let (pipes, bench) = grid();
    let reference = reference_bytes(&pipes, &bench);
    for workers in [1usize, 2, 4] {
        let dir = tmp_dir(&format!("n{workers}"));
        let job = job(&pipes, &bench, None);
        let exec = ParallelExecutor::new(2);
        let config = FleetConfig {
            heartbeat_interval: Duration::from_millis(20),
            idle_backoff: Duration::from_millis(2),
            ..FleetConfig::default()
        };
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        fleet::run_worker(&dir, &exec, &job, &RuleJudge::new(), &config)
                            .expect("worker runs")
                    })
                })
                .collect();
            let total: usize = handles
                .into_iter()
                .map(|h| h.join().expect("worker thread").shards_evaluated)
                .sum();
            assert_eq!(
                total,
                shard_plan(&job).len(),
                "{workers} workers: every shard committed exactly once"
            );
        });
        assert_eq!(
            merged_bytes(&dir, &job),
            reference,
            "{workers}-worker fleet is byte-identical to the single-process run"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Re-exec entry point: joins the fleet named by
/// `CHIPVQA_FLEET_WORKER_DIR` (no-op when unset, i.e. in a normal test
/// run). The worker shares the store at `DIR/store`, runs the chaos
/// grid's fleet at `DIR/fleet`, paced by `CHIPVQA_FLEET_POST_CLAIM_MS`
/// so a `kill -9` reliably lands while a lease is held, optionally
/// under a panic-only fault plan (`CHIPVQA_FLEET_PANIC_RATE`).
#[test]
fn fleet_worker_subprocess_entry() {
    let Ok(dir) = std::env::var("CHIPVQA_FLEET_WORKER_DIR") else {
        return;
    };
    install_quiet_panic_hook();
    let dir = PathBuf::from(dir);
    let post_claim_ms: u64 = std::env::var("CHIPVQA_FLEET_POST_CLAIM_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let panic_rate: f64 = std::env::var("CHIPVQA_FLEET_PANIC_RATE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let (pipes, bench) = grid();
    let store = Arc::new(
        AnswerStore::open_shared(
            dir.join("store"),
            StoreConfig::default(),
            Telemetry::disabled(),
        )
        .expect("shared store opens"),
    );
    let store_gen = store.generation();
    let cache = Arc::new(AnswerCache::new().with_store(store));
    let mut exec = ParallelExecutor::new(2).with_cache(cache);
    if panic_rate > 0.0 {
        let plan = FaultPlan {
            panic_rate,
            seed: chaos_seed(),
            ..FaultPlan::none()
        };
        exec = exec.with_supervisor(Supervisor::new(plan));
    }
    let job = job(&pipes, &bench, Some(store_gen));
    let config = FleetConfig {
        heartbeat_interval: Duration::from_millis(25),
        idle_backoff: Duration::from_millis(5),
        post_claim_delay: Duration::from_millis(post_claim_ms),
        ..FleetConfig::default()
    };
    fleet::run_worker(&dir.join("fleet"), &exec, &job, &RuleJudge::new(), &config)
        .expect("subprocess worker runs");
    std::process::exit(0);
}

fn spawn_worker(dir: &Path, post_claim_ms: u64, panic_rate: f64) -> std::process::Child {
    Command::new(std::env::current_exe().expect("own binary"))
        .args([
            "fleet_worker_subprocess_entry",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env("CHIPVQA_FLEET_WORKER_DIR", dir)
        .env("CHIPVQA_FLEET_POST_CLAIM_MS", post_claim_ms.to_string())
        .env("CHIPVQA_FLEET_PANIC_RATE", panic_rate.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawns worker subprocess")
}

/// Contract 2, the headline: three real subprocess workers, all
/// `kill -9`'d mid-run on a seeded schedule, leases and quarantines
/// left as wreckage. A fresh worker steals exactly the orphaned leases
/// (telemetry counts match), heals the dead workers' quarantined
/// shards, and the merged report is byte-identical to the
/// single-process reference — with the shared store clean.
#[test]
fn kill_nine_storm_steals_orphan_leases_heals_quarantine_and_merges_identical() {
    let seed = chaos_seed();
    let (pipes, bench) = grid();
    let reference = reference_bytes(&pipes, &bench);
    let dir = tmp_dir("kill9");
    let fleet_dir = dir.join("fleet");

    // a panic-prone worker plus two calm ones, paced so kills land
    // while leases are held
    let mut children = [
        spawn_worker(&dir, 150, 0.35),
        spawn_worker(&dir, 150, 0.0),
        spawn_worker(&dir, 150, 0.0),
    ];
    let mut dead_pids = Vec::new();
    for (k, child) in children.iter_mut().enumerate() {
        let delay = 350 + seed.wrapping_mul(k as u64 + 1) % 600;
        std::thread::sleep(Duration::from_millis(delay / (k as u64 + 1)));
        let pid = child.id();
        let _ = child.kill(); // SIGKILL: no destructors, no lease release
        let _ = child.wait(); // reap, so /proc/<pid> is really gone
        dead_pids.push(pid);
    }

    // fabricate the one piece of wreckage the schedule can't guarantee:
    // a dead worker's lease over a shard it had already quarantined —
    // the steal-then-heal path must cope with it regardless
    let job_probe = job(&pipes, &bench, None);
    let keys = shard_plan(&job_probe);
    let manifest_fp = {
        let manifest: fleet::FleetManifest = serde_json::from_str(
            &fs::read_to_string(fleet_dir.join("manifest.json")).expect("manifest exists"),
        )
        .expect("manifest parses");
        manifest.fingerprint()
    };
    let open_idx = (0..keys.len())
        .find(|&i| !done_path(&fleet_dir, i).exists())
        .expect("the kill schedule left work unfinished");
    let wreck = Lease {
        shard_index: open_idx,
        shard: keys[open_idx],
        pid: dead_pids[0],
        start_token: 1, // irrelevant: the pid is dead
        nonce: 7,
        heartbeat: 3,
        manifest_fingerprint: manifest_fp,
        healing: false,
    };
    fs::write(
        lease_path(&fleet_dir, open_idx),
        serde_json::to_string(&wreck).expect("serializes"),
    )
    .expect("plants wreck lease");
    if !quarantine_path(&fleet_dir, open_idx).exists() {
        let degraded = ShardRecord {
            manifest_fingerprint: manifest_fp,
            quarantined: true,
            worker_pid: dead_pids[0],
            result: chipvqa::eval::ShardResult {
                key: keys[open_idx],
                outcomes: Vec::new(),
            },
        };
        fs::write(
            quarantine_path(&fleet_dir, open_idx),
            serde_json::to_string(&degraded).expect("serializes"),
        )
        .expect("plants quarantine");
    }

    // exact wreckage census, after the fabrication: the finisher must
    // steal every orphan lease and heal every orphan quarantine
    let orphan_leases = (0..keys.len())
        .filter(|&i| lease_path(&fleet_dir, i).exists())
        .count();
    let orphan_quarantines = (0..keys.len())
        .filter(|&i| quarantine_path(&fleet_dir, i).exists() && !done_path(&fleet_dir, i).exists())
        .count();
    assert!(orphan_leases >= 1, "census includes the fabricated lease");
    assert!(orphan_quarantines >= 1, "census includes the quarantine");

    // the finisher: calm, instrumented, sharing the same store
    let sink = Arc::new(MemorySink::new());
    let tele = Telemetry::builder()
        .clock(MockClock::new(1))
        .sink(Arc::clone(&sink))
        .build();
    let store = Arc::new(
        AnswerStore::open_shared(dir.join("store"), StoreConfig::default(), tele.clone())
            .expect("shared store reopens despite dead writers' markers"),
    );
    let store_gen = store.generation();
    let cache = Arc::new(AnswerCache::new().with_store(store));
    let exec = ParallelExecutor::new(2)
        .with_cache(cache)
        .with_telemetry(tele.clone());
    let job = job(&pipes, &bench, Some(store_gen));
    let config = FleetConfig {
        heartbeat_interval: Duration::from_millis(25),
        idle_backoff: Duration::from_millis(5),
        ..FleetConfig::default()
    };
    let outcome = fleet::run_worker(&fleet_dir, &exec, &job, &RuleJudge::new(), &config)
        .expect("finisher runs");

    assert_eq!(
        outcome.leases_stolen, orphan_leases,
        "every orphan lease stolen, none double-stolen (seed {seed})"
    );
    assert_eq!(
        outcome.steals_lost, 0,
        "no rival thief: steal counts are exact"
    );
    assert_eq!(
        outcome.shards_healed, orphan_quarantines,
        "every orphan quarantine healed calm (seed {seed})"
    );
    let counters = tele.snapshot().counters;
    assert_eq!(
        counters.get("fleet.lease.steal").copied().unwrap_or(0),
        orphan_leases as u64,
        "fleet.lease.steal telemetry matches the wreckage census"
    );
    let steal_events = sink.named("fleet.lease.steal");
    assert_eq!(steal_events.len(), orphan_leases);
    assert!(
        steal_events
            .iter()
            .any(|e| e.get("reason") == Some("dead-pid")),
        "the dead workers' leases were judged dead-pid"
    );

    // byte-identity under the kill schedule
    assert_eq!(
        merged_bytes(&fleet_dir, &job),
        reference,
        "kill -9 storm: merged report is byte-identical (seed {seed})"
    );

    // chaos storm scan, extended to the fleet's shared store: every
    // decodable record is clean, and no key maps to two different
    // answers (duplicate identical writes from racing workers are
    // benign; conflicting ones would be corruption)
    let reader = AnswerStore::open_read_only(dir.join("store")).expect("reader opens");
    let mut by_key: HashMap<String, String> = HashMap::new();
    let mut records = 0usize;
    for seg in reader.segment_paths() {
        let (decoded, _) = decode_segment(&seg).expect("segment decodes");
        for record in decoded {
            records += 1;
            assert!(
                !chipvqa::eval::fault::is_corrupted_text(&record.answer.text),
                "faulted answer persisted in {}",
                seg.display()
            );
            let key = serde_json::to_string(&record.key).expect("key serializes");
            let answer = serde_json::to_string(&record.answer).expect("answer serializes");
            if let Some(prev) = by_key.insert(key, answer.clone()) {
                assert_eq!(prev, answer, "same key, two different answers: torn store");
            }
        }
    }
    assert!(
        records > 0,
        "the fleet persisted answers to the shared store"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Contract 3: a live worker whose heartbeat has frozen is judged
/// stalled and loses its lease — detected only after two observations
/// of an unchanged counter, never on first sight.
#[test]
fn stalled_heartbeat_lease_is_stolen_with_reason_stalled() {
    let (pipes, bench) = grid();
    let dir = tmp_dir("stall");
    let job = job(&pipes, &bench, None);
    let manifest = job.manifest();
    let manifest_fp = manifest.fingerprint();
    for sub in ["leases", "done", "quarantine"] {
        fs::create_dir_all(dir.join(sub)).expect("mkdir");
    }
    fs::write(
        dir.join("manifest.json"),
        serde_json::to_string(&manifest).expect("serializes"),
    )
    .expect("writes manifest");
    // a lease held by THIS live process with a real start token, but no
    // heartbeat thread behind it: only the stall path can reclaim it
    let keys = shard_plan(&job);
    let frozen = Lease {
        shard_index: 0,
        shard: keys[0],
        pid: std::process::id(),
        start_token: chipvqa::eval::store::own_start_token(),
        nonce: 424_242,
        heartbeat: 9,
        manifest_fingerprint: manifest_fp,
        healing: false,
    };
    fs::write(
        lease_path(&dir, 0),
        serde_json::to_string(&frozen).expect("serializes"),
    )
    .expect("plants frozen lease");

    let sink = Arc::new(MemorySink::new());
    let tele = Telemetry::builder()
        .clock(MockClock::new(1))
        .sink(Arc::clone(&sink))
        .build();
    let exec = ParallelExecutor::new(2).with_telemetry(tele.clone());
    let config = FleetConfig {
        heartbeat_interval: Duration::from_millis(20),
        stall_timeout: Duration::ZERO, // stalled on the second look
        idle_backoff: Duration::from_millis(2),
        ..FleetConfig::default()
    };
    let outcome =
        fleet::run_worker(&dir, &exec, &job, &RuleJudge::new(), &config).expect("worker runs");
    assert_eq!(
        outcome.leases_stolen, 1,
        "exactly the frozen lease is stolen"
    );
    let steal_events = sink.named("fleet.lease.steal");
    assert_eq!(steal_events.len(), 1);
    assert_eq!(steal_events[0].get("reason"), Some("stalled"));
    assert_eq!(
        merged_bytes(&dir, &job),
        reference_bytes(&pipes, &bench),
        "a stall-steal does not perturb the merged bytes"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Contract 4: merge refuses wrong spec fingerprints, wrong store
/// generations, and incomplete fleets with structured errors — never a
/// silently wrong report.
#[test]
fn merge_refusals_are_structured() {
    let (pipes, bench) = grid();
    let dir = tmp_dir("refuse");
    let stamped = FleetJob {
        spec_fingerprint: Some(111),
        store_generation: Some(2),
        ..job(&pipes, &bench, None)
    };
    fs::create_dir_all(&dir).expect("mkdir");
    fs::write(
        dir.join("manifest.json"),
        serde_json::to_string(&stamped.manifest()).expect("serializes"),
    )
    .expect("writes manifest");

    let wrong_spec = FleetJob {
        spec_fingerprint: Some(222),
        ..stamped
    };
    assert!(matches!(
        fleet::merge(&dir, &wrong_spec, &Telemetry::disabled()),
        Err(FleetError::SpecFingerprintMismatch {
            stamped: Some(111),
            expected: Some(222),
        })
    ));
    let wrong_gen = FleetJob {
        store_generation: Some(3),
        ..stamped
    };
    assert!(matches!(
        fleet::merge(&dir, &wrong_gen, &Telemetry::disabled()),
        Err(FleetError::StoreGenerationMismatch {
            stamped: Some(2),
            current: Some(3),
        })
    ));
    match fleet::merge(&dir, &stamped, &Telemetry::disabled()) {
        Err(FleetError::Incomplete { done: 0, total }) => {
            assert_eq!(total, shard_plan(&stamped).len());
        }
        other => panic!("expected Incomplete, got {other:?}"),
    }
    // the structured errors render operator-readable messages
    let msg = fleet::merge(&dir, &wrong_spec, &Telemetry::disabled())
        .unwrap_err()
        .to_string();
    assert!(
        msg.contains("spec fingerprint"),
        "message names the field: {msg}"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The fleet's healing semantics match the checkpoint layer's
/// `requeue_quarantined`: both re-run quarantined shards calm and
/// converge to the clean report (cross-layer consistency probe).
#[test]
fn fleet_healing_matches_checkpoint_requeue_semantics() {
    let (pipes, bench) = grid();
    let plan = FaultPlan {
        panic_rate: 0.3,
        seed: chaos_seed(),
        ..FaultPlan::none()
    };
    install_quiet_panic_hook();

    // checkpoint path: supervised run, requeue, calm resume
    let supervised = ParallelExecutor::new(2).with_supervisor(Supervisor::new(plan.clone()));
    let calm = ParallelExecutor::new(2);
    let options = EvalOptions::default();
    let mut cp = Checkpoint::new(&pipes, &bench, options);
    supervised
        .evaluate_grid_resumable(&pipes, &bench, options, &RuleJudge::new(), &mut cp, None)
        .expect("supervised pass");
    cp.requeue_quarantined();
    let via_checkpoint: Vec<String> = calm
        .evaluate_grid_resumable(&pipes, &bench, options, &RuleJudge::new(), &mut cp, None)
        .expect("calm resume")
        .expect("grid completes")
        .into_iter()
        .map(report_bytes)
        .collect();

    // fleet path: one supervised worker (self-heals on later passes)
    let dir = tmp_dir("heal-parity");
    let job = job(&pipes, &bench, None);
    let config = FleetConfig {
        heartbeat_interval: Duration::from_millis(20),
        idle_backoff: Duration::from_millis(2),
        ..FleetConfig::default()
    };
    fleet::run_worker(&dir, &supervised, &job, &RuleJudge::new(), &config).expect("worker runs");
    assert_eq!(
        merged_bytes(&dir, &job),
        via_checkpoint,
        "fleet healing and checkpoint requeue converge to the same bytes"
    );
    let _ = fs::remove_dir_all(&dir);
}

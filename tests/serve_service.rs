//! Integration suite for the resident evaluation service: cancel/resume
//! byte-identity across worker counts with a warm store, admission
//! shedding under saturation, per-tenant breaker protection, graceful
//! shutdown with no torn store tail, cross-session answer sharing, and
//! the progress event stream.

use std::sync::mpsc::Receiver;
use std::time::Duration;

use chipvqa::core::{ChipVqa, DatasetSpec};
use chipvqa::eval::harness::{evaluate, EvalOptions};
use chipvqa::eval::AnswerStore;
use chipvqa::models::{ModelZoo, VlmPipeline};
use chipvqa::serve::{
    AdmissionConfig, EvalService, ProgressEvent, ServiceConfig, SessionId, SessionReport,
    SessionRequest, SessionState, ShedReason,
};

const WAIT: Duration = Duration::from_secs(120);

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chipvqa-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The batch-mode reference: the same request through the plain
/// sequential harness, wrapped like a session report.
fn batch_reference(request: &SessionRequest) -> String {
    let bench = request.spec.build();
    SessionReport::new(
        request
            .models
            .iter()
            .map(|profile| evaluate(&VlmPipeline::new(profile.clone()), &bench, request.options))
            .collect(),
    )
    .canonical_json()
}

fn gpt4o_request(tenant: &str) -> SessionRequest {
    SessionRequest::single(tenant, ModelZoo::gpt4o())
}

/// Blocks until the session reports its first completed shard and
/// returns that event's `shards_done` (the event is consumed from `rx`).
fn await_first_shard(rx: &Receiver<ProgressEvent>, id: SessionId) -> usize {
    loop {
        match rx.recv_timeout(WAIT).expect("progress stream is live") {
            ProgressEvent::Shard {
                session,
                shards_done,
                ..
            } if session == id => return shards_done,
            _ => {}
        }
    }
}

/// Blocks until the session has left the admission queue.
fn await_admitted(service: &EvalService, id: SessionId) {
    let deadline = std::time::Instant::now() + WAIT;
    while service.snapshot(id).expect("session exists").state == SessionState::Queued {
        assert!(
            std::time::Instant::now() < deadline,
            "session never admitted"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn cancel_resume_is_byte_identical_across_worker_counts_with_warm_store() {
    for workers in [1usize, 2, 8] {
        let dir = temp_dir(&format!("resume-w{workers}"));
        let mut service = EvalService::start(ServiceConfig {
            workers,
            runners: 1,
            shard_batch: 1,
            step_delay: Duration::from_millis(20),
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .expect("store opens");
        let request = gpt4o_request("determinism");
        let reference = batch_reference(&request);

        // Uninterrupted run — also warms the shared store.
        let uninterrupted = service.submit(request.clone()).expect("queue empty");
        assert_eq!(
            service.wait(uninterrupted, WAIT).expect("terminates"),
            SessionState::Done
        );
        let baseline = service.report(uninterrupted).expect("done has report");
        assert_eq!(
            baseline.canonical_json(),
            reference,
            "service report must equal the batch harness byte for byte ({workers} workers)"
        );

        // Cancelled mid-run (store warm), then resumed.
        let rx = service.subscribe();
        let id = service.submit(request.clone()).expect("queue empty");
        await_first_shard(&rx, id);
        service.cancel(id).expect("running session cancels");
        assert_eq!(
            service.wait(id, WAIT).expect("terminates"),
            SessionState::Cancelled
        );
        let snap = service.snapshot(id).expect("session exists");
        assert!(
            snap.shards_done > 0 && snap.shards_done < snap.shards_total,
            "cancellation must land mid-run, got {}/{} shards",
            snap.shards_done,
            snap.shards_total
        );

        service.resume(id).expect("cancelled session resumes");
        assert_eq!(
            service.wait(id, WAIT).expect("terminates"),
            SessionState::Done
        );
        let resumed = service.report(id).expect("done has report");
        assert_eq!(
            resumed.canonical_json(),
            reference,
            "cancel+resume must be byte-identical to uninterrupted ({workers} workers)"
        );

        service.shutdown().expect("flushes");
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn resume_preserves_partial_progress() {
    let mut service = EvalService::start(ServiceConfig {
        workers: 2,
        runners: 1,
        shard_batch: 1,
        step_delay: Duration::from_millis(20),
        ..ServiceConfig::default()
    })
    .expect("no store: cannot fail");
    let rx = service.subscribe();
    let id = service.submit(gpt4o_request("partial")).expect("accepted");
    let first = await_first_shard(&rx, id);
    service.cancel(id).expect("cancels");
    assert_eq!(
        service.wait(id, WAIT).expect("terminates"),
        SessionState::Cancelled
    );
    let done_at_cancel = service.snapshot(id).expect("exists").shards_done;
    assert!(done_at_cancel > 0);

    service.resume(id).expect("resumes");
    assert_eq!(
        service.wait(id, WAIT).expect("terminates"),
        SessionState::Done
    );
    // The resumed run executed only the remaining shards: progress
    // events for the resume continue the count instead of restarting.
    let mut dones: Vec<usize> = rx
        .try_iter()
        .filter_map(|e| match e {
            ProgressEvent::Shard {
                session,
                shards_done,
                ..
            } if session == id => Some(shards_done),
            _ => None,
        })
        .collect();
    dones.insert(0, first); // consumed by await_first_shard above
    let snap = service.snapshot(id).expect("exists");
    assert_eq!(snap.shards_done, snap.shards_total);
    assert_eq!(
        dones.iter().max().copied(),
        Some(snap.shards_total),
        "shard events cover the full plan exactly once: {dones:?}"
    );
    assert_eq!(
        dones.len(),
        snap.shards_total,
        "no shard re-executed on resume: {dones:?}"
    );
    service.shutdown().expect("clean stop");
}

#[test]
fn saturation_sheds_structured_and_loses_nothing() {
    let mut service = EvalService::start(ServiceConfig {
        workers: 2,
        runners: 1,
        shard_batch: 1,
        step_delay: Duration::from_millis(25),
        admission: AdmissionConfig {
            queue_capacity: 1,
            tenant_running_quota: 1,
            tenant_in_flight_limit: 1,
            ..AdmissionConfig::default()
        },
        ..ServiceConfig::default()
    })
    .expect("no store");

    // Fill the single run slot and the single queue slot.
    let running = service.submit(gpt4o_request("a")).expect("run slot");
    await_admitted(&service, running);
    let queued = service.submit(gpt4o_request("b")).expect("queue slot");

    // Same tenant again: shed by the per-tenant in-flight limit.
    let saturated = service.submit(gpt4o_request("a")).unwrap_err();
    assert!(
        matches!(
            &saturated,
            ShedReason::TenantSaturated {
                tenant,
                in_flight: 1,
                limit: 1
            } if tenant == "a"
        ),
        "got {saturated:?}"
    );

    // Fresh tenant: shed by queue capacity.
    let full = service.submit(gpt4o_request("c")).unwrap_err();
    assert!(
        matches!(
            &full,
            ShedReason::QueueFull {
                depth: 1,
                capacity: 1
            }
        ),
        "got {full:?}"
    );

    // Every shed is structured: round-trips through JSON.
    for shed in [&saturated, &full] {
        let json = serde_json::to_string(shed).expect("serializes");
        let back: ShedReason = serde_json::from_str(&json).expect("parses");
        assert_eq!(&back, shed);
        assert!(!shed.to_string().is_empty());
    }

    // Nothing accepted is ever lost: both sessions terminate.
    assert_eq!(
        service.wait(running, WAIT).expect("terminates"),
        SessionState::Done
    );
    assert_eq!(
        service.wait(queued, WAIT).expect("terminates"),
        SessionState::Done
    );
    let stats = service.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.failed + stats.cancelled, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.running, 0);
    assert_eq!(stats.admission.shed_tenant_saturated, 1);
    assert_eq!(stats.admission.shed_queue_full, 1);
    service.shutdown().expect("clean stop");
}

#[test]
fn failing_tenant_trips_its_breaker_without_hurting_others() {
    let mut service = EvalService::start(ServiceConfig {
        workers: 2,
        runners: 1,
        admission: AdmissionConfig {
            breaker: chipvqa::eval::supervisor::BreakerConfig {
                failure_threshold: 2,
                cooldown: 2,
                probe_successes: 1,
            },
            ..AdmissionConfig::default()
        },
        ..ServiceConfig::default()
    })
    .expect("no store");

    // An empty model set is admitted but fails at run time — a tenant
    // fault that counts against the tenant's breaker.
    let broken = SessionRequest {
        models: Vec::new(),
        ..gpt4o_request("flaky")
    };
    for _ in 0..2 {
        let id = service
            .submit(broken.clone())
            .expect("breaker still closed");
        assert_eq!(
            service.wait(id, WAIT).expect("terminates"),
            SessionState::Failed
        );
        let snap = service.snapshot(id).expect("exists");
        assert!(snap.error.is_some(), "failed session carries its error");
    }

    // Breaker open: submissions shed without queueing, `cooldown` times.
    for _ in 0..2 {
        let shed = service.submit(broken.clone()).unwrap_err();
        assert!(
            matches!(&shed, ShedReason::TenantBreakerOpen { tenant } if tenant == "flaky"),
            "got {shed:?}"
        );
    }

    // Other tenants flow normally the whole time.
    let good = service.submit(gpt4o_request("steady")).expect("unaffected");
    assert_eq!(
        service.wait(good, WAIT).expect("terminates"),
        SessionState::Done
    );

    // Cooldown paid: the half-open probe admits, success closes.
    let probe = service
        .submit(gpt4o_request("flaky"))
        .expect("half-open probe");
    assert_eq!(
        service.wait(probe, WAIT).expect("terminates"),
        SessionState::Done
    );
    let after = service
        .submit(gpt4o_request("flaky"))
        .expect("breaker closed again");
    assert_eq!(
        service.wait(after, WAIT).expect("terminates"),
        SessionState::Done
    );

    let stats = service.stats();
    assert_eq!(stats.failed, 2);
    assert_eq!(stats.admission.shed_breaker_open, 2);
    assert_eq!(stats.admission.breaker_trips, 1);
    service.shutdown().expect("clean stop");
}

#[test]
fn graceful_shutdown_flushes_the_store_with_no_torn_tail() {
    let dir = temp_dir("shutdown");
    let rx;
    let in_flight;
    let queued;
    {
        // Scope-drop is the SIGTERM stand-in: the drop guard must run a
        // full graceful shutdown even without an explicit call.
        let service = EvalService::start(ServiceConfig {
            workers: 2,
            runners: 1,
            shard_batch: 1,
            step_delay: Duration::from_millis(25),
            store_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .expect("store opens");
        rx = service.subscribe();
        in_flight = service.submit(gpt4o_request("a")).expect("accepted");
        queued = service.submit(gpt4o_request("b")).expect("accepted");
        await_first_shard(&rx, in_flight);
        // service drops here, mid-run
    }

    // Drop joined every thread and cancelled everything in flight:
    // the event stream's last word on each session is terminal.
    let mut last_state = std::collections::HashMap::new();
    for event in rx.try_iter() {
        if let ProgressEvent::State { session, state } = event {
            last_state.insert(session, state);
        }
    }
    assert_eq!(last_state.get(&in_flight), Some(&SessionState::Cancelled));
    assert_eq!(last_state.get(&queued), Some(&SessionState::Cancelled));

    // The flushed store reopens with zero recovered segments — no torn
    // tail — and still serves the answers written before the stop.
    let store = AnswerStore::open_read_only(&dir).expect("reopens");
    let stats = store.stats();
    assert_eq!(
        (stats.recovered_segments, stats.recovered_bytes),
        (0, 0),
        "graceful shutdown must not tear the store tail"
    );
    assert!(
        stats.entries > 0,
        "the in-flight session's completed shards were flushed"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_rejects_new_work_and_is_idempotent() {
    let mut service = EvalService::new();
    let id = service.submit(gpt4o_request("t")).expect("accepted");
    assert_eq!(
        service.wait(id, WAIT).expect("terminates"),
        SessionState::Done
    );
    service.shutdown().expect("clean stop");
    assert_eq!(
        service.submit(gpt4o_request("t")).unwrap_err(),
        ShedReason::ShuttingDown
    );
    assert!(matches!(
        service.resume(id),
        Err(chipvqa::serve::SessionError::Shed(ShedReason::ShuttingDown))
            | Err(chipvqa::serve::SessionError::NotResumable(_, _))
    ));
    service.shutdown().expect("second shutdown is a no-op");
}

#[test]
fn concurrent_sessions_share_the_answer_plane() {
    let mut service = EvalService::start(ServiceConfig {
        workers: 2,
        runners: 2,
        ..ServiceConfig::default()
    })
    .expect("no store");
    let request = gpt4o_request("shared");
    let reference = batch_reference(&request);

    let ids: Vec<SessionId> = (0..4)
        .map(|_| service.submit(request.clone()).expect("accepted"))
        .collect();
    for id in &ids {
        assert_eq!(
            service.wait(*id, WAIT).expect("terminates"),
            SessionState::Done
        );
        assert_eq!(
            service.report(*id).expect("done").canonical_json(),
            reference,
            "shared cache must never change results"
        );
    }
    let stats = service.cache_stats();
    let bench_len = ChipVqa::standard().len() as u64;
    assert_eq!(stats.hits + stats.misses, 4 * bench_len);
    assert!(
        stats.hits > 0 && stats.misses < 4 * bench_len,
        "later sessions batch through earlier sessions' answers \
         (hits {}, misses {})",
        stats.hits,
        stats.misses
    );
    service.shutdown().expect("clean stop");
}

#[test]
fn progress_stream_narrates_the_full_lifecycle() {
    let mut service = EvalService::start(ServiceConfig {
        workers: 1,
        runners: 1,
        ..ServiceConfig::default()
    })
    .expect("no store");
    let rx = service.subscribe();
    let id = service.submit(gpt4o_request("observer")).expect("accepted");
    assert_eq!(
        service.wait(id, WAIT).expect("terminates"),
        SessionState::Done
    );

    let events: Vec<ProgressEvent> = rx.try_iter().collect();
    let states: Vec<SessionState> = events
        .iter()
        .filter_map(|e| match e {
            ProgressEvent::State { session, state } if *session == id => Some(*state),
            _ => None,
        })
        .collect();
    assert_eq!(
        states,
        vec![
            SessionState::Queued,
            SessionState::Admitted,
            SessionState::Running,
            SessionState::Done,
        ]
    );
    let mut shard_counts: Vec<usize> = events
        .iter()
        .filter_map(|e| match e {
            ProgressEvent::Shard {
                session,
                shards_done,
                shards_total,
                model,
                ..
            } if *session == id => {
                assert_eq!(model, "GPT4o");
                assert_eq!(*shards_total, 9);
                Some(*shards_done)
            }
            _ => None,
        })
        .collect();
    shard_counts.sort_unstable();
    assert_eq!(shard_counts, (1..=9).collect::<Vec<usize>>());
    service.shutdown().expect("clean stop");
}

#[test]
fn session_api_rejects_nonsense() {
    let mut service = EvalService::new();
    let ghost = SessionId(999);
    assert!(matches!(
        service.cancel(ghost),
        Err(chipvqa::serve::SessionError::UnknownSession(_))
    ));
    assert!(matches!(
        service.report(ghost),
        Err(chipvqa::serve::SessionError::UnknownSession(_))
    ));
    let id = service.submit(gpt4o_request("t")).expect("accepted");
    assert_eq!(
        service.wait(id, WAIT).expect("terminates"),
        SessionState::Done
    );
    assert!(matches!(
        service.resume(id),
        Err(chipvqa::serve::SessionError::NotResumable(
            _,
            SessionState::Done
        ))
    ));
    assert!(matches!(
        service.cancel(id),
        Err(chipvqa::serve::SessionError::AlreadyTerminal(
            _,
            SessionState::Done
        ))
    ));
    service.shutdown().expect("clean stop");
}

#[test]
fn scaled_specs_and_multi_model_grids_serve_identically() {
    let mut service = EvalService::start(ServiceConfig {
        workers: 4,
        runners: 1,
        ..ServiceConfig::default()
    })
    .expect("no store");
    let request = SessionRequest {
        tenant: "grid".to_string(),
        models: vec![ModelZoo::gpt4o(), ModelZoo::llava_7b()],
        spec: DatasetSpec::scaled(2),
        options: EvalOptions::default(),
        fault_plan: None,
        stream_shard_len: None,
    };
    let reference = batch_reference(&request);
    let id = service.submit(request).expect("accepted");
    assert_eq!(
        service.wait(id, WAIT).expect("terminates"),
        SessionState::Done
    );
    assert_eq!(
        service.report(id).expect("done").canonical_json(),
        reference
    );
    service.shutdown().expect("clean stop");
}

#[test]
fn supervised_streamed_sessions_match_supervised_batch_bytes() {
    use chipvqa::eval::{FaultPlan, ParallelExecutor, Supervisor};

    let plan = FaultPlan::uniform(907, 0.04);
    let spec = DatasetSpec::scaled(2);
    let request = SessionRequest::single("chaos", ModelZoo::gpt4o())
        .with_spec(spec.clone())
        .with_fault_plan(plan.clone())
        .with_streaming(17);

    // Batch-supervised reference over the materialized bench, wrapped
    // like a session report (cache_stats cleared).
    let bench = spec.build();
    let exec = ParallelExecutor::new(2).with_supervisor(Supervisor::new(plan));
    let reference = SessionReport::new(vec![exec.evaluate(
        &VlmPipeline::new(ModelZoo::gpt4o()),
        &bench,
        request.options,
    )])
    .canonical_json();

    for workers in [1, 4] {
        let mut service = EvalService::start(ServiceConfig {
            workers,
            runners: 1,
            ..ServiceConfig::default()
        })
        .expect("no store");
        let id = service.submit(request.clone()).expect("accepted");
        assert_eq!(
            service.wait(id, WAIT).expect("terminates"),
            SessionState::Done
        );
        assert_eq!(
            service.report(id).expect("done").canonical_json(),
            reference,
            "streamed supervised session ({workers} workers) diverged from supervised batch"
        );
        service.shutdown().expect("clean stop");
    }
}

#[test]
fn streamed_sessions_without_chaos_match_the_batch_reference() {
    let request = SessionRequest::single("stream", ModelZoo::llava_7b())
        .with_spec(DatasetSpec::scaled(2))
        .with_streaming(1);
    let reference = batch_reference(&request);
    let mut service = EvalService::start(ServiceConfig {
        workers: 4,
        runners: 1,
        ..ServiceConfig::default()
    })
    .expect("no store");
    let id = service.submit(request).expect("accepted");
    assert_eq!(
        service.wait(id, WAIT).expect("terminates"),
        SessionState::Done
    );
    assert_eq!(
        service.report(id).expect("done").canonical_json(),
        reference
    );
    service.shutdown().expect("clean stop");
}

#[test]
fn cancelled_streamed_chaos_sessions_resume_to_identical_bytes() {
    use chipvqa::eval::{FaultPlan, ParallelExecutor, Supervisor};

    let plan = FaultPlan::uniform(31, 0.05);
    let spec = DatasetSpec::scaled(2);
    let request = SessionRequest {
        tenant: "restart".to_string(),
        models: vec![ModelZoo::gpt4o(), ModelZoo::llava_7b()],
        spec: spec.clone(),
        options: EvalOptions::default(),
        fault_plan: Some(plan.clone()),
        stream_shard_len: Some(17),
    };
    let bench = spec.build();
    let exec = ParallelExecutor::new(2).with_supervisor(Supervisor::new(plan));
    let reference = SessionReport::new(
        request
            .models
            .iter()
            .map(|profile| {
                exec.evaluate(&VlmPipeline::new(profile.clone()), &bench, request.options)
            })
            .collect(),
    )
    .canonical_json();

    let mut service = EvalService::start(ServiceConfig {
        workers: 2,
        runners: 1,
        ..ServiceConfig::default()
    })
    .expect("no store");
    let id = service.submit(request).expect("accepted");
    // Race a cancel against the run: streamed sessions cancel at model
    // granularity and retain no checkpoint, so whichever way the race
    // lands, the session either finishes or resumes from scratch — and
    // determinism converges both to the same bytes.
    let _ = service.cancel(id);
    let state = service.wait(id, WAIT).expect("terminates");
    if state == SessionState::Cancelled {
        service.resume(id).expect("cancelled sessions resume");
        assert_eq!(
            service.wait(id, WAIT).expect("terminates"),
            SessionState::Done
        );
    }
    assert_eq!(
        service.report(id).expect("done").canonical_json(),
        reference
    );
    service.shutdown().expect("clean stop");
}

//! T-stream-chaos: the streamed-vs-batch differential chaos wall.
//!
//! Supervised (chaos) execution on the streaming intake path must be a
//! pure re-scheduling of supervised batch execution: the windowed
//! breaker's decisions are a function of (plan seed, model fingerprint,
//! question position, attempt), never of shard length or worker
//! scheduling. These properties pin that contract end-to-end:
//!
//! 1. for **any** seeded plan, any spec, any worker count in {1, 2, 8}
//!    and any shard length in {1, 17, 142}, the supervised streamed
//!    report serializes byte-identically to the supervised batch report
//!    over the materialized bench;
//! 2. the **zero** plan makes supervision free on the streaming path:
//!    a zero-plan supervised stream is byte-identical to an
//!    unsupervised stream (and quarantines nothing);
//! 3. streamed coverage accounting closes (answered + failed +
//!    breaker-skipped = N) and panic-quarantined shards heal through
//!    [`ParallelExecutor::requeue_quarantined_stream`] to the clean
//!    bytes;
//! 4. the run's `stream.*` peak gauges and cache lifetime gauges are
//!    emitted even when a panic storm unwinds workers mid-run — the
//!    drop-guards fire on every exit path.
//!
//! `CHIPVQA_CHAOS_SEED` (the CI `stream-chaos` matrix) perturbs the
//! injected plans without touching the proptest case generator.

use std::sync::Arc;

use chipvqa::core::DatasetSpec;
use chipvqa::eval::fault::install_quiet_panic_hook;
use chipvqa::eval::harness::{EvalOptions, EvalReport};
use chipvqa::eval::{AnswerCache, FaultPlan, ParallelExecutor, Supervisor};
use chipvqa::models::{ModelZoo, VlmPipeline};
use chipvqa::telemetry::{MemorySink, Telemetry};
use proptest::prelude::*;

/// CI chaos-matrix seed; defaults to a fixed value locally.
fn chaos_seed() -> u64 {
    std::env::var("CHIPVQA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_806)
}

fn json(report: &EvalReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

/// The shard lengths every property sweeps: degenerate one-question
/// shards, a length coprime to the 16-question breaker window, and the
/// full base collection in one shard.
const SHARD_LENS: [usize; 3] = [1, 17, 142];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Property 1: supervised streaming is a re-scheduling of
    /// supervised batch — same storm, same bytes, for every worker
    /// count × shard length combination.
    #[test]
    fn supervised_streaming_is_byte_identical_to_supervised_batch(
        seed in 0u64..1_000_000,
        rate in 0.005f64..0.05,
        scale in 1usize..3,
        spec_seed in 0u64..1_000,
    ) {
        install_quiet_panic_hook();
        let spec = DatasetSpec::scaled(scale).with_seed(spec_seed);
        let plan = FaultPlan::uniform(seed ^ chaos_seed(), rate);
        let pipe = VlmPipeline::new(ModelZoo::llava_34b());
        let batch = ParallelExecutor::new(2)
            .with_supervisor(Supervisor::new(plan.clone()))
            .evaluate(&pipe, &spec.build(), EvalOptions::default());
        let reference = json(&batch);
        for workers in [1usize, 2, 8] {
            for shard_len in SHARD_LENS {
                let exec = ParallelExecutor::new(workers)
                    .with_supervisor(Supervisor::new(plan.clone()));
                let (streamed, _) =
                    exec.evaluate_spec_stream(&pipe, &spec, shard_len, EvalOptions::default());
                prop_assert_eq!(
                    &reference,
                    &json(&streamed),
                    "streamed ({} workers, shard_len {}) diverged from batch",
                    workers,
                    shard_len
                );
            }
        }
    }

    /// Property 2: the zero plan makes supervision free on the
    /// streaming path, exactly as it already is on the batch path.
    #[test]
    fn zero_plan_supervised_streaming_matches_unsupervised_streaming(
        scale in 1usize..3,
        spec_seed in 0u64..1_000,
        workers_idx in 0usize..3,
        shard_idx in 0usize..3,
    ) {
        let workers = [1usize, 2, 8][workers_idx];
        let shard_len = SHARD_LENS[shard_idx];
        let spec = DatasetSpec::scaled(scale).with_seed(spec_seed);
        let pipe = VlmPipeline::new(ModelZoo::phi3_vision());
        let (plain, plain_stats) = ParallelExecutor::new(workers)
            .evaluate_spec_stream(&pipe, &spec, shard_len, EvalOptions::default());
        let (supervised, stats) = ParallelExecutor::new(workers)
            .with_supervisor(Supervisor::new(FaultPlan::none()))
            .evaluate_spec_stream(&pipe, &spec, shard_len, EvalOptions::default());
        prop_assert_eq!(&json(&plain), &json(&supervised));
        prop_assert!(!supervised.is_degraded());
        prop_assert_eq!(stats.quarantined_shards, 0);
        prop_assert_eq!(plain_stats.quarantined_shards, 0);
    }

    /// Property 3 (accounting half): streamed supervised coverage
    /// accounting closes for every shard length and worker count.
    #[test]
    fn streamed_accounting_always_sums_to_spec_total(
        seed in 0u64..1_000_000,
        rate in 0.02f64..0.12,
        scale in 1usize..3,
        shard_idx in 0usize..3,
    ) {
        let shard_len = SHARD_LENS[shard_idx];
        install_quiet_panic_hook();
        let spec = DatasetSpec::scaled(scale);
        let plan = FaultPlan::uniform(seed ^ chaos_seed(), rate / 6.0);
        let exec = ParallelExecutor::new(4).with_supervisor(Supervisor::new(plan));
        let pipe = VlmPipeline::new(ModelZoo::paligemma());
        let (report, _) = exec.evaluate_spec_stream(&pipe, &spec, shard_len, EvalOptions::default());
        prop_assert_eq!(
            report.answered() + report.failed() + report.breaker_skipped(),
            spec.total(),
            "streamed run does not account for every question"
        );
        let by_cat = report.category_accounting();
        let total: usize = by_cat.values().map(|(a, f, s)| a + f + s).sum();
        prop_assert_eq!(total, spec.total(), "streamed category accounting leaks");
    }
}

#[test]
fn broken_model_is_shed_on_the_streaming_path_too() {
    // The windowed breaker re-closes at every 16-question window
    // boundary, so a fully broken model is probed a bounded number of
    // times per window and shed for the rest — never silently scored.
    install_quiet_panic_hook();
    let spec = DatasetSpec::scaled(1);
    let pipe = VlmPipeline::new(ModelZoo::paligemma());
    let plan = FaultPlan::none().with_broken_model(pipe.fingerprint());
    let exec = ParallelExecutor::new(4).with_supervisor(Supervisor::new(plan.clone()));
    let (streamed, _) = exec.evaluate_spec_stream(&pipe, &spec, 17, EvalOptions::default());
    assert_eq!(streamed.answered(), 0, "a broken model must not score");
    assert!(streamed.breaker_skipped() > 0, "the breaker must shed");
    assert_eq!(
        streamed.answered() + streamed.failed() + streamed.breaker_skipped(),
        spec.total()
    );
    // and identically to batch
    let batch = ParallelExecutor::new(4)
        .with_supervisor(Supervisor::new(plan))
        .evaluate(&pipe, &spec.build(), EvalOptions::default());
    assert_eq!(json(&batch), json(&streamed));
}

#[test]
fn streamed_panic_quarantine_heals_by_requeue_to_clean_bytes() {
    // Property 3 (healing half): a panic storm quarantines shards on
    // the streaming path; re-running just those shards calmly through
    // `requeue_quarantined_stream` converges the report to the clean
    // bytes an unfaulted run produces.
    install_quiet_panic_hook();
    let spec = DatasetSpec::scaled(2);
    let shard_len = 17;
    let pipe = VlmPipeline::new(ModelZoo::neva_22b());
    let (clean, _) = ParallelExecutor::new(4).evaluate_spec_stream(
        &pipe,
        &spec,
        shard_len,
        EvalOptions::default(),
    );

    let plan = FaultPlan {
        panic_rate: 0.08,
        ..FaultPlan::none()
    };
    let stormy = ParallelExecutor::new(4).with_supervisor(Supervisor::new(plan));
    let (mut report, stats) =
        stormy.evaluate_spec_stream(&pipe, &spec, shard_len, EvalOptions::default());
    assert!(stats.quarantined_shards > 0, "the storm must hit something");
    assert!(report.is_degraded());

    let healed = stormy.requeue_quarantined_stream(
        &pipe,
        &spec,
        shard_len,
        EvalOptions::default(),
        &mut report,
    );
    assert_eq!(healed, stats.quarantined_shards);
    assert_eq!(
        json(&clean),
        json(&report),
        "requeued shards heal the streamed report to clean bytes"
    );
    assert!(!report.is_degraded());

    // healing is idempotent: a clean report has nothing to requeue
    assert_eq!(
        stormy.requeue_quarantined_stream(
            &pipe,
            &spec,
            shard_len,
            EvalOptions::default(),
            &mut report,
        ),
        0
    );
}

#[test]
fn stream_gauges_are_emitted_even_when_a_panic_storm_hits_workers() {
    // Satellite regression: the `stream.*` peak gauges and the cache's
    // lifetime counters ride drop-guards, so a run whose workers panic
    // (caught and accounted as WorkerPanic) still reports them.
    install_quiet_panic_hook();
    let sink = Arc::new(MemorySink::new());
    let tele = Telemetry::builder().sink(Arc::clone(&sink)).build();
    let cache = Arc::new(AnswerCache::new());
    let spec = DatasetSpec::scaled(1);
    let plan = FaultPlan {
        panic_rate: 0.1,
        ..FaultPlan::none()
    };
    let exec = ParallelExecutor::new(4)
        .with_supervisor(Supervisor::new(plan))
        .with_cache(Arc::clone(&cache))
        .with_telemetry(tele.clone());
    let (report, stats) = exec.evaluate_spec_stream(&pipe(), &spec, 17, EvalOptions::default());
    assert!(
        stats.quarantined_shards > 0,
        "the storm must panic at least one worker"
    );
    assert!(report.is_degraded());
    let snap = tele.snapshot();
    assert!(
        snap.gauges["stream.peak_in_flight"] >= 1.0,
        "peak-in-flight gauge must survive worker panics"
    );
    assert!(
        snap.gauges["stream.peak_resident"] >= 1.0,
        "generator peak-resident gauge must survive worker panics"
    );
    let cache_stats = cache.stats();
    assert_eq!(
        snap.gauges["cache.lifetime_hits"],
        cache_stats.lifetime_hits as f64
    );
    assert_eq!(
        snap.gauges["cache.lifetime_misses"],
        cache_stats.lifetime_misses as f64
    );
    assert!(
        snap.counters.contains_key("executor.panic_caught"),
        "caught panics are counted"
    );
}

fn pipe() -> VlmPipeline {
    VlmPipeline::new(ModelZoo::neva_22b())
}

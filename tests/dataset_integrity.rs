//! Table-I integrity: the generated dataset must match the paper's
//! published statistics exactly where they are exact, and structurally
//! where the source table is garbled (see DESIGN.md §3 note on the
//! visual-kind tail).

use std::collections::BTreeSet;

use chipvqa::core::question::{Category, QuestionKind, VisualKind};
use chipvqa::core::stats::DatasetStats;
use chipvqa::core::tokens::count_tokens;
use chipvqa::core::ChipVqa;
use chipvqa::eval::{Judge, RuleJudge};

#[test]
fn table1_exact_counts() {
    let stats = DatasetStats::compute(&ChipVqa::standard());
    assert_eq!(stats.total, 142);
    assert_eq!(stats.multiple_choice, 99);
    assert_eq!(stats.short_answer, 43);
    let cats: Vec<usize> = stats.by_category.iter().map(|&(_, n)| n).collect();
    assert_eq!(cats, vec![35, 44, 20, 20, 23]);
}

#[test]
fn table1_visual_kinds() {
    let stats = DatasetStats::compute(&ChipVqa::standard());
    // the paper's majority rows, exact
    assert_eq!(stats.by_visual[0], (VisualKind::Schematic, 53));
    assert_eq!(stats.by_visual[1], (VisualKind::Diagram, 29));
    assert_eq!(stats.by_visual[2], (VisualKind::Layout, 16));
    // twelve kinds, summing to the full collection
    assert_eq!(stats.by_visual.len(), 12);
    assert_eq!(stats.by_visual.iter().map(|&(_, n)| n).sum::<usize>(), 142);
}

#[test]
fn prompt_token_spread_matches_paper_band() {
    let bench = ChipVqa::standard();
    let counts: Vec<usize> = bench.iter().map(|q| count_tokens(&q.prompt)).collect();
    let min = *counts.iter().min().expect("nonempty");
    let max = *counts.iter().max().expect("nonempty");
    assert!(min <= 8, "paper min is 5 tokens; got {min}");
    assert!(
        (300..=400).contains(&max),
        "paper max is 370 tokens; got {max}"
    );
}

#[test]
fn every_question_is_well_formed() {
    let bench = ChipVqa::standard();
    let judge = RuleJudge::new();
    let mut ids = BTreeSet::new();
    for q in bench.iter() {
        assert!(ids.insert(q.id.clone()), "duplicate id {}", q.id);
        assert!(!q.prompt.is_empty(), "{}", q.id);
        assert!(q.visual.image.ink_pixels() > 0, "{}: blank visual", q.id);
        for &m in &q.key_marks {
            assert!(m < q.visual.marks.len(), "{}: dangling mark {m}", q.id);
        }
        if let QuestionKind::MultipleChoice { choices, correct } = &q.kind {
            assert!(*correct < 4, "{}", q.id);
            let set: BTreeSet<&String> = choices.iter().collect();
            assert_eq!(set.len(), 4, "{}: duplicate choices {choices:?}", q.id);
        }
        // the gold must be self-consistent under the judge
        assert!(
            judge.is_correct(q, &q.golden_text()),
            "{}: gold '{}' fails its own judge",
            q.id,
            q.golden_text()
        );
        // and no distractor may be judged correct
        if let QuestionKind::MultipleChoice { choices, correct } = &q.kind {
            for (i, c) in choices.iter().enumerate() {
                if i != *correct {
                    let lettered = format!("({}) {c}", (b'a' + i as u8) as char);
                    assert!(
                        !judge.is_correct(q, &lettered),
                        "{}: distractor '{lettered}' judged correct",
                        q.id
                    );
                }
            }
        }
    }
}

#[test]
fn golden_stats_and_ids_are_frozen() {
    // The executor's cache and checkpoints key on question ids and
    // prompt hashes, so the standard collection's identity must be
    // frozen: Table-I counts exactly, and the id sequence stable across
    // regenerations (ids are `<category>-<index>` with zero-padded,
    // gap-free, per-category indices in collection order).
    let bench = ChipVqa::standard();
    let stats = DatasetStats::compute(&bench);
    assert_eq!(
        (stats.total, stats.multiple_choice, stats.short_answer),
        (142, 99, 43)
    );
    let per_cat: Vec<(Category, usize)> = stats.by_category.clone();
    assert_eq!(
        per_cat,
        vec![
            (Category::Digital, 35),
            (Category::Analog, 44),
            (Category::Architecture, 20),
            (Category::Manufacture, 20),
            (Category::Physical, 23),
        ]
    );

    let mut next_index: std::collections::BTreeMap<&str, usize> = Default::default();
    for q in bench.iter() {
        let (prefix, index) = q.id.split_once('-').expect("dash-separated id");
        assert_eq!(index.len(), 3, "{}: zero-padded 3-digit index", q.id);
        let counter = next_index
            .entry(match q.category {
                Category::Digital => "digital",
                Category::Analog => "analog",
                Category::Architecture => "arch",
                Category::Manufacture => "manuf",
                Category::Physical => "physical",
            })
            .or_default();
        assert_eq!(prefix, q.id.split('-').next().unwrap());
        assert_eq!(
            index.parse::<usize>().expect("numeric index"),
            *counter,
            "{}: per-category indices are gap-free in order",
            q.id
        );
        *counter += 1;
    }

    // regeneration yields the same ids in the same order — cache keys
    // and checkpoints stay valid across processes
    let again = ChipVqa::standard();
    let ids: Vec<&String> = bench.iter().map(|q| &q.id).collect();
    let ids_again: Vec<&String> = again.iter().map(|q| &q.id).collect();
    assert_eq!(ids, ids_again);
    assert_eq!(ids.first().map(|s| s.as_str()), Some("digital-000"));

    // prompts (and hence prompt hashes) are equally frozen
    use chipvqa::eval::cache::prompt_hash;
    for (a, b) in bench.iter().zip(again.iter()) {
        assert_eq!(prompt_hash(a), prompt_hash(b), "{}", a.id);
    }
}

#[test]
fn categories_match_id_prefixes() {
    let bench = ChipVqa::standard();
    for q in bench.iter() {
        let prefix = q.id.split('-').next().expect("dash-separated id");
        let expected = match q.category {
            Category::Digital => "digital",
            Category::Analog => "analog",
            Category::Architecture => "arch",
            Category::Manufacture => "manuf",
            Category::Physical => "physical",
        };
        assert_eq!(prefix, expected, "{}", q.id);
    }
}

#[test]
fn different_seed_same_structure_different_content() {
    let a = ChipVqa::standard();
    let b = ChipVqa::with_seed(12345);
    let sa = DatasetStats::compute(&a);
    let sb = DatasetStats::compute(&b);
    assert_eq!(sa.total, sb.total);
    assert_eq!(sa.multiple_choice, sb.multiple_choice);
    assert_eq!(
        sa.by_category, sb.by_category,
        "structure is seed-independent"
    );
    let differing = a
        .iter()
        .zip(b.iter())
        .filter(|(x, y)| x.prompt != y.prompt || x.kind != y.kind)
        .count();
    assert!(
        differing > 40,
        "content must vary with the seed: {differing}"
    );
}

#[test]
fn extended_golden_stats_and_ids_are_frozen() {
    // Mirror of `golden_stats_and_ids_are_frozen` for the extension
    // set: cache keys and checkpoints taken over `extended()` must stay
    // valid across regenerations, so its identity is frozen too.
    let ext = ChipVqa::extended();
    let stats = DatasetStats::compute(&ext);
    assert_eq!(
        (stats.total, stats.multiple_choice, stats.short_answer),
        (160, 99, 61)
    );
    assert_eq!(
        stats.by_category,
        vec![
            (Category::Digital, 38),
            (Category::Analog, 50),
            (Category::Architecture, 23),
            (Category::Manufacture, 21),
            (Category::Physical, 28),
        ]
    );

    // the standard collection is a verbatim prefix, and the extension
    // ids continue from 100 in a frozen order
    let std = ChipVqa::standard();
    for (a, b) in std.iter().zip(ext.iter()) {
        assert_eq!(a, b);
    }
    let ext_ids: Vec<&str> = ext.iter().skip(std.len()).map(|q| q.id.as_str()).collect();
    assert_eq!(
        ext_ids,
        vec![
            "digital-100",
            "digital-101",
            "digital-102",
            "analog-100",
            "analog-101",
            "analog-102",
            "analog-110",
            "analog-111",
            "analog-120",
            "arch-100",
            "arch-101",
            "arch-102",
            "physical-100",
            "physical-101",
            "physical-102",
            "physical-110",
            "physical-111",
            "manuf-100",
        ]
    );

    // regeneration is id- and prompt-hash-stable
    use chipvqa::eval::cache::prompt_hash;
    let again = ChipVqa::extended();
    for (a, b) in ext.iter().zip(again.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(prompt_hash(a), prompt_hash(b), "{}", a.id);
    }
}

#[test]
fn dataset_spec_at_scale_one_is_the_standard_collection() {
    // The scale engine's identity anchor: the default spec reproduces
    // `standard()` exactly — same 142 questions, same ids, same order —
    // so spec-keyed cache entries and canonical ones describe the same
    // dataset at scale 1.
    use chipvqa::core::DatasetSpec;
    let spec = DatasetSpec::default();
    let built = spec.build();
    let std = ChipVqa::standard();
    assert_eq!(built.len(), 142);
    let built_ids: Vec<&String> = built.iter().map(|q| &q.id).collect();
    let std_ids: Vec<&String> = std.iter().map(|q| &q.id).collect();
    assert_eq!(built_ids, std_ids);
    for (a, b) in built.iter().zip(std.iter()) {
        assert_eq!(a, b, "{}", a.id);
    }
}

#[test]
fn streamed_scale10_report_bytes_are_frozen() {
    // PR 9's behaviour-neutrality wall: the hot-path speed campaign
    // (row-sliced raster primitives, shared-downsample perception,
    // solver memoization) must change ZERO report bytes. This freezes
    // the canonical JSON of the full streamed `table2 --scale 10` grid
    // — every zoo model, standard and challenge columns — against a
    // hash captured before the optimizations landed. Re-capture (only
    // for a deliberate behaviour change) with CHIPVQA_PRINT_GOLDENS=1.
    use chipvqa::core::{DatasetSpec, BASE_SIZE};
    use chipvqa::eval::harness::EvalOptions;
    use chipvqa::eval::report::{ModelRow, Table2};
    use chipvqa::eval::ParallelExecutor;
    use chipvqa::models::{ModelZoo, VlmPipeline};

    let standard = DatasetSpec::scaled(10);
    let challenge = standard.clone().with_mc_sa_ratio(0.0);
    let exec = ParallelExecutor::new(4);
    let rows = ModelZoo::all()
        .into_iter()
        .map(|profile| {
            let pipe = VlmPipeline::new(profile);
            let (std_report, _) =
                exec.evaluate_spec_stream(&pipe, &standard, BASE_SIZE, EvalOptions::default());
            let (chal_report, _) =
                exec.evaluate_spec_stream(&pipe, &challenge, BASE_SIZE, EvalOptions::default());
            ModelRow {
                standard: std_report,
                challenge: chal_report,
            }
        })
        .collect();
    let mut table = Table2 { rows };
    // cache_stats is run metadata (excluded from report equality and
    // from table2 --report-json); null it the same way the bin does.
    for row in &mut table.rows {
        row.standard.cache_stats = None;
        row.challenge.cache_stats = None;
    }
    let json = serde_json::to_string(&table).expect("table serializes");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in json.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if std::env::var("CHIPVQA_PRINT_GOLDENS").is_ok() {
        println!(
            "streamed scale-10 report hash: 0x{h:016x} ({} bytes)",
            json.len()
        );
        return;
    }
    const FROZEN: u64 = 0x24a58e347df841cf;
    assert_eq!(
        h, FROZEN,
        "streamed --scale 10 report bytes drifted (got 0x{h:016x}); \
         the perf campaign must be behaviour-neutral"
    );
}

//! T1: the parallel executor is *bit-identical* to sequential
//! evaluation — for every zoo model, any worker count, with and without
//! the answer cache, and across checkpointed kill/resume runs.

use std::sync::Arc;

use chipvqa::core::ChipVqa;
use chipvqa::eval::harness::{evaluate, EvalOptions};
use chipvqa::eval::{
    AnswerCache, Checkpoint, NoisyJudge, ParallelExecutor, RetryPolicy, RuleJudge,
};
use chipvqa::models::{ModelZoo, VlmPipeline};

#[test]
fn all_zoo_models_identical_across_worker_counts() {
    let bench = ChipVqa::standard();
    let profiles = ModelZoo::all();
    assert_eq!(profiles.len(), 12, "the paper's twelve models");

    for profile in profiles {
        let pipe = VlmPipeline::new(profile);
        let sequential = evaluate(&pipe, &bench, EvalOptions::default());
        for workers in [1usize, 2, 8] {
            let parallel =
                ParallelExecutor::new(workers).evaluate(&pipe, &bench, EvalOptions::default());
            assert_eq!(
                sequential,
                parallel,
                "{}: {workers} workers diverged from sequential",
                pipe.profile().name
            );
        }
    }
}

#[test]
fn cached_rerun_is_identical_and_all_hits() {
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::llava_34b());
    let sequential = evaluate(&pipe, &bench, EvalOptions::default());

    let cache = Arc::new(AnswerCache::new());
    let exec = ParallelExecutor::new(8).with_cache(Arc::clone(&cache));
    let cold = exec.evaluate(&pipe, &bench, EvalOptions::default());
    let warm = exec.evaluate(&pipe, &bench, EvalOptions::default());

    assert_eq!(sequential, cold);
    assert_eq!(sequential, warm);
    assert_eq!(cache.len(), bench.len(), "one entry per question");
    assert_eq!(cache.hits() as usize, bench.len(), "warm run is all hits");
}

#[test]
fn noisy_judge_parallel_matches_sequential() {
    // Judge noise is deterministic per (question, response), so even a
    // flaky judge must not introduce worker-count dependence.
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::neva_22b());
    let judge = NoisyJudge::new(RuleJudge::new(), 0.05, 17);
    let sequential =
        chipvqa::eval::harness::evaluate_with_judge(&pipe, &bench, EvalOptions::default(), &judge);
    for workers in [2usize, 8] {
        let parallel = ParallelExecutor::new(workers).evaluate_with_judge(
            &pipe,
            &bench,
            EvalOptions::default(),
            &judge,
        );
        assert_eq!(sequential, parallel, "workers = {workers}");
    }
}

#[test]
fn retry_majority_is_worker_count_independent() {
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let judge = NoisyJudge::new(RuleJudge::new(), 0.10, 5);
    let reference = ParallelExecutor::new(1)
        .with_retry(RetryPolicy::with_attempts(3))
        .evaluate_with_judge(&pipe, &bench, EvalOptions::default(), &judge);
    let wide = ParallelExecutor::new(8)
        .with_retry(RetryPolicy::with_attempts(3))
        .evaluate_with_judge(&pipe, &bench, EvalOptions::default(), &judge);
    assert_eq!(reference, wide);
}

#[test]
fn interrupted_grid_resume_matches_sequential() {
    let bench = ChipVqa::standard();
    let pipes: Vec<VlmPipeline> = [ModelZoo::gpt4o(), ModelZoo::fuyu_8b()]
        .into_iter()
        .map(VlmPipeline::new)
        .collect();
    let options = EvalOptions::default();
    let exec = ParallelExecutor::new(4);

    // drive the run in small budget slices through serialized checkpoints,
    // as a repeatedly-killed driver process would
    let mut json = Checkpoint::new(&pipes, &bench, options)
        .to_json()
        .expect("serialize");
    let reports = loop {
        let mut ckpt = Checkpoint::from_json(&json).expect("parse");
        match exec
            .evaluate_grid_resumable(
                &pipes,
                &bench,
                options,
                &RuleJudge::new(),
                &mut ckpt,
                Some(2),
            )
            .expect("compatible checkpoint")
        {
            Some(reports) => break reports,
            None => json = ckpt.to_json().expect("serialize"),
        }
    };

    for (pipe, report) in pipes.iter().zip(&reports) {
        assert_eq!(&evaluate(pipe, &bench, options), report);
    }
}

//! Serialization round-trips across the public data types.

use chipvqa::core::stats::DatasetStats;
use chipvqa::core::ChipVqa;
use chipvqa::eval::harness::EvalOptions;
use chipvqa::eval::{
    AnswerCache, CacheKey, CacheSnapshot, CachedAnswer, Checkpoint, ParallelExecutor, RuleJudge,
};
use chipvqa::models::backbone::AnswerPath;
use chipvqa::models::{ModelZoo, VlmPipeline};

#[test]
fn collection_json_roundtrip() {
    let bench = ChipVqa::standard();
    let json = bench.to_json().expect("serializes");
    assert!(json.contains("digital-000"));
    assert!(json.contains("S'Q + SR'"));
    let back = ChipVqa::from_json(&json).expect("deserializes");
    assert_eq!(back.len(), bench.len());
    for (a, b) in bench.iter().zip(back.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.prompt, b.prompt);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.answer, b.answer);
    }
    // images regenerate from the recorded seed
    assert!(back.iter().all(|q| q.visual.image.ink_pixels() > 0));
}

#[test]
fn stats_serialize() {
    let stats = DatasetStats::compute(&ChipVqa::standard());
    let json = serde_json::to_string(&stats).expect("serializes");
    let back: DatasetStats = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(stats, back);
}

#[test]
fn profiles_serialize() {
    for profile in ModelZoo::all() {
        let json = serde_json::to_string(&profile).expect("serializes");
        let back: chipvqa::models::ModelProfile =
            serde_json::from_str(&json).expect("deserializes");
        assert_eq!(profile, back);
    }
}

#[test]
fn checkpoint_json_roundtrip_mid_run() {
    let bench = ChipVqa::standard();
    let pipes: Vec<VlmPipeline> = [ModelZoo::gpt4o(), ModelZoo::llava_7b()]
        .into_iter()
        .map(VlmPipeline::new)
        .collect();
    let options = EvalOptions {
        attempts: 2,
        downsample: 2,
    };
    let exec = ParallelExecutor::new(4);
    let mut ckpt = Checkpoint::new(&pipes, &bench, options);
    let partial = exec
        .evaluate_grid_resumable(
            &pipes,
            &bench,
            options,
            &RuleJudge::new(),
            &mut ckpt,
            Some(4),
        )
        .expect("compatible");
    assert!(partial.is_none(), "4 of 18 shards is not a full grid");
    assert_eq!(ckpt.completed_shards(), 4);

    let json = ckpt.to_json().expect("serializes");
    assert!(json.contains("model_fingerprints"));
    let back = Checkpoint::from_json(&json).expect("deserializes");
    assert_eq!(
        back, ckpt,
        "checkpoint round-trips mid-run, outcomes and all"
    );
    assert!(back.validate(&pipes, &bench, options).is_ok());
}

#[test]
fn empty_checkpoint_roundtrip() {
    let bench = ChipVqa::standard();
    let pipes = vec![VlmPipeline::new(ModelZoo::kosmos_2())];
    let ckpt = Checkpoint::new(&pipes, &bench, EvalOptions::default());
    let back = Checkpoint::from_json(&ckpt.to_json().expect("serializes")).expect("deserializes");
    assert_eq!(back, ckpt);
    assert_eq!(back.completed_shards(), 0);
}

#[test]
fn cache_snapshot_json_roundtrip() {
    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::phi3_vision());
    let cache = AnswerCache::new();
    for (i, q) in bench.iter().take(5).enumerate() {
        let key = CacheKey::new(pipe.fingerprint(), q, 1 + i % 2, i as u64 % 3);
        cache.insert(
            key,
            CachedAnswer::from(&pipe.infer(q, 1 + i % 2, i as u64 % 3)),
        );
    }
    let snap = cache.snapshot();
    let json = serde_json::to_string(&snap).expect("serializes");
    let back: CacheSnapshot = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, snap);

    let restored = AnswerCache::from_snapshot(back);
    assert_eq!(restored.len(), 5);
    let q = &bench.questions()[0];
    let key = CacheKey::new(pipe.fingerprint(), q, 1, 0);
    assert_eq!(
        restored.lookup(&key).expect("restored entry").text,
        pipe.infer(q, 1, 0).text
    );
}

#[test]
fn cached_answer_preserves_path_variants() {
    for path in [AnswerPath::Solved, AnswerPath::Guessed, AnswerPath::Failed] {
        let ans = CachedAnswer {
            text: "42 ns".into(),
            path,
            solve_probability: 0.25,
        };
        let json = serde_json::to_string(&ans).expect("serializes");
        let back: CachedAnswer = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, ans);
    }
}

#[test]
fn eval_report_roundtrips_with_and_without_cache_stats() {
    use chipvqa::eval::harness::EvalReport;
    use std::sync::Arc;

    let bench = ChipVqa::standard();
    let pipe = VlmPipeline::new(ModelZoo::llava_13b());

    // Cache-less run: `cache_stats` serializes as null and survives.
    let plain = ParallelExecutor::new(2).evaluate(&pipe, &bench, EvalOptions::default());
    let json = serde_json::to_string(&plain).expect("serializes");
    assert!(json.contains("\"cache_stats\":null"));
    let back: EvalReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, plain);
    assert_eq!(back.cache_stats, None);

    // Cached run: the stats block round-trips field-for-field. Equality
    // on EvalReport ignores run metadata, so compare the stats directly.
    let cache = Arc::new(AnswerCache::new());
    let exec = ParallelExecutor::new(2).with_cache(Arc::clone(&cache));
    let cached = exec.evaluate(&pipe, &bench, EvalOptions::default());
    let stats = cached.cache_stats.expect("cached run records stats");
    assert_eq!(stats, cache.stats());
    let json = serde_json::to_string(&cached).expect("serializes");
    let back: EvalReport = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, cached);
    assert_eq!(back.cache_stats, Some(stats));
}

#[test]
fn telemetry_summary_roundtrip() {
    use chipvqa::telemetry::{Telemetry, TelemetrySummary};

    let bench = ChipVqa::standard();
    let tele = Telemetry::recording();
    let exec = ParallelExecutor::new(2).with_telemetry(tele.clone());
    exec.evaluate(
        &VlmPipeline::new(ModelZoo::paligemma()),
        &bench,
        EvalOptions::default(),
    );
    let summary = tele.summary();
    assert!(!summary.is_empty(), "instrumented run produces a summary");
    let json = serde_json::to_string(&summary).expect("serializes");
    let back: TelemetrySummary = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, summary);
}

#[test]
fn jsonl_trace_roundtrip() {
    use chipvqa::telemetry::{parse_jsonl, JsonlSink, MockClock, Telemetry};
    use std::sync::Arc;

    let bench = ChipVqa::standard();
    let sink = Arc::new(JsonlSink::new());
    let tele = Telemetry::builder()
        .clock(MockClock::new(1))
        .sink(Arc::clone(&sink))
        .build();
    let exec = ParallelExecutor::new(1).with_telemetry(tele);
    exec.evaluate(
        &VlmPipeline::new(ModelZoo::kosmos_2()),
        &bench,
        EvalOptions::default(),
    );
    let text = sink.to_jsonl();
    let records = parse_jsonl(&text).expect("every line parses back");
    assert_eq!(records.len(), sink.len());
    assert!(records.iter().any(|r| r.name() == "executor.run"));
}

#[test]
fn question_metadata_roundtrip_skips_pixels() {
    let bench = ChipVqa::standard();
    let q = bench.questions().first().expect("nonempty");
    let json = serde_json::to_string(q).expect("serializes");
    assert!(
        !json.contains("\"pixels\"") && !json.contains("\"data\":[255"),
        "images must not be serialized"
    );
    let back: chipvqa::core::Question = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.id, q.id);
    assert_eq!(back.answer, q.answer);
}

//! Serialization round-trips across the public data types.

use chipvqa::core::stats::DatasetStats;
use chipvqa::core::ChipVqa;
use chipvqa::models::ModelZoo;

#[test]
fn collection_json_roundtrip() {
    let bench = ChipVqa::standard();
    let json = bench.to_json().expect("serializes");
    assert!(json.contains("digital-000"));
    assert!(json.contains("S'Q + SR'"));
    let back = ChipVqa::from_json(&json).expect("deserializes");
    assert_eq!(back.len(), bench.len());
    for (a, b) in bench.iter().zip(back.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.prompt, b.prompt);
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.answer, b.answer);
    }
    // images regenerate from the recorded seed
    assert!(back.iter().all(|q| q.visual.image.ink_pixels() > 0));
}

#[test]
fn stats_serialize() {
    let stats = DatasetStats::compute(&ChipVqa::standard());
    let json = serde_json::to_string(&stats).expect("serializes");
    let back: DatasetStats = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(stats, back);
}

#[test]
fn profiles_serialize() {
    for profile in ModelZoo::all() {
        let json = serde_json::to_string(&profile).expect("serializes");
        let back: chipvqa::models::ModelProfile =
            serde_json::from_str(&json).expect("deserializes");
        assert_eq!(profile, back);
    }
}

#[test]
fn question_metadata_roundtrip_skips_pixels() {
    let bench = ChipVqa::standard();
    let q = bench.questions().first().expect("nonempty");
    let json = serde_json::to_string(q).expect("serializes");
    assert!(
        !json.contains("\"pixels\"") && !json.contains("\"data\":[255"),
        "images must not be serialized"
    );
    let back: chipvqa::core::Question = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.id, q.id);
    assert_eq!(back.answer, q.answer);
}

//! Telemetry must be a pure observer: attaching it never changes a
//! report, and under a [`MockClock`] with one worker the trace itself is
//! a deterministic artifact — two identical runs produce byte-identical
//! JSONL.

use std::sync::Arc;

use chipvqa::core::ChipVqa;
use chipvqa::eval::fault::install_quiet_panic_hook;
use chipvqa::eval::harness::{evaluate, EvalOptions, EvalReport};
use chipvqa::eval::{AnswerCache, FaultPlan, ParallelExecutor, Supervisor};
use chipvqa::models::{ModelZoo, VlmPipeline};
use chipvqa::telemetry::{JsonlSink, MemorySink, MockClock, Telemetry};

/// Seed matching the CI chaos matrix default.
fn chaos_seed() -> u64 {
    std::env::var("CHIPVQA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_806)
}

fn traced_chaos_run(seed: u64) -> (EvalReport, String) {
    let sink = Arc::new(JsonlSink::new());
    let tele = Telemetry::builder()
        .clock(MockClock::new(1))
        .sink(Arc::clone(&sink))
        .build();
    let exec = ParallelExecutor::new(1)
        .with_supervisor(Supervisor::new(FaultPlan::uniform(seed, 0.03)))
        .with_telemetry(tele);
    let report = exec.evaluate(
        &VlmPipeline::new(ModelZoo::llava_34b()),
        &ChipVqa::standard(),
        EvalOptions::default(),
    );
    (report, sink.to_jsonl())
}

/// Two identical seeded runs under a mock clock write the exact same
/// trace file — the artifact is reproducible, not just the report.
#[test]
fn seeded_chaos_trace_is_byte_identical() {
    install_quiet_panic_hook();
    let seed = chaos_seed();
    let (report_a, trace_a) = traced_chaos_run(seed);
    let (report_b, trace_b) = traced_chaos_run(seed);
    assert_eq!(report_a, report_b);
    assert!(!trace_a.is_empty());
    assert_eq!(trace_a, trace_b, "same seed must replay the same trace");
    // and a different seed actually changes the storm
    let (_, other) = traced_chaos_run(seed.wrapping_add(1));
    assert_ne!(trace_a, other, "seed must steer the trace");
}

/// Fully enabled telemetry leaves every zoo model's report identical to
/// the sequential harness at every worker count.
#[test]
fn enabled_telemetry_is_invisible_to_every_zoo_model() {
    let bench = ChipVqa::standard();
    for profile in ModelZoo::all() {
        let pipe = VlmPipeline::new(profile);
        let reference = evaluate(&pipe, &bench, EvalOptions::default());
        for workers in [1usize, 4] {
            let tele = Telemetry::builder()
                .sink(Arc::new(MemorySink::new()))
                .build();
            let traced = ParallelExecutor::new(workers)
                .with_telemetry(tele)
                .evaluate(&pipe, &bench, EvalOptions::default());
            assert_eq!(
                reference,
                traced,
                "{} with {workers} workers",
                pipe.profile().name
            );
            assert_eq!(
                serde_json::to_string(&reference).expect("serializes"),
                serde_json::to_string(&traced).expect("serializes"),
                "{}: byte-identical with telemetry attached",
                pipe.profile().name
            );
        }
    }
}

/// The zero-fault supervised path stays clean when observed: no fault,
/// retry, or breaker counters appear, and verdict counts close over the
/// benchmark.
#[test]
fn zero_plan_records_a_clean_trace() {
    let bench = ChipVqa::standard();
    let tele = Telemetry::recording();
    let exec = ParallelExecutor::new(4)
        .with_supervisor(Supervisor::new(FaultPlan::none()))
        .with_telemetry(tele.clone());
    let report = exec.evaluate(
        &VlmPipeline::new(ModelZoo::phi3_vision()),
        &bench,
        EvalOptions::default(),
    );
    assert!(!report.is_degraded());

    let snap = tele.snapshot();
    for dirty in [
        "fault.injected",
        "supervisor.retry",
        "supervisor.deadline_overrun",
        "breaker.trips",
        "breaker.shed",
        "executor.panic_caught",
    ] {
        assert!(
            !snap.counters.contains_key(dirty),
            "zero-fault run must not count {dirty}"
        );
    }
    let verdicts: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("judge.verdict."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(verdicts as usize, bench.len());
}

/// Telemetry's cache counters and the report's `cache_stats` block are
/// two views of the same traffic.
#[test]
fn cache_counters_agree_with_report_stats() {
    let bench = ChipVqa::standard();
    let cache = Arc::new(AnswerCache::new());
    let tele = Telemetry::recording();
    let exec = ParallelExecutor::new(4)
        .with_cache(Arc::clone(&cache))
        .with_telemetry(tele.clone());
    let pipe = VlmPipeline::new(ModelZoo::llava_llama3());
    exec.evaluate(&pipe, &bench, EvalOptions::default());
    let warm = exec.evaluate(&pipe, &bench, EvalOptions::default());

    let stats = warm.cache_stats.expect("cached run reports stats");
    assert_eq!(stats, cache.stats());
    let snap = tele.snapshot();
    assert_eq!(snap.counters["cache.hit"], stats.hits);
    assert_eq!(snap.counters["cache.miss"], stats.misses);
    assert_eq!(snap.counters["cache.insert"], stats.insertions);
    assert!(
        stats.hits >= bench.len() as u64,
        "second pass hits the cache"
    );
}

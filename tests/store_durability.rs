//! T-store: durability and crash-recovery of the persistent answer
//! store, proven end-to-end against the evaluation stack.
//!
//! The contract under test: **every recovery path converges to a
//! byte-identical `EvalReport` versus a cold run.** The pipeline is
//! deterministic per cache key, so whatever a corruption, truncation or
//! killed writer destroys is simply re-inferred — a warm start after
//! *any* injected damage must produce the same report bytes as a run
//! that never had a store at all.
//!
//! `cache_stats` is run metadata (excluded from report equality and
//! different between cold and warm runs by design), so byte comparisons
//! null it first; everything else must match to the byte.
//!
//! `CHIPVQA_CHAOS_SEED` (the CI chaos matrix) perturbs the injected
//! damage without touching the proptest case generator, so each CI seed
//! explores different corruption sites while staying reproducible.

use std::fs::{self, OpenOptions};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use chipvqa::core::{ChipVqa, DatasetSpec, BASE_SIZE};
use chipvqa::eval::harness::{EvalOptions, EvalReport};
use chipvqa::eval::store::{decode_segment, AnswerStore, StoreConfig, StoreStats};
use chipvqa::eval::{AnswerCache, CacheStats, Checkpoint, CheckpointError, ParallelExecutor};
use chipvqa::models::{ModelZoo, VlmPipeline};
use chipvqa::telemetry::Telemetry;
use proptest::prelude::*;

/// CI chaos-matrix seed; defaults to a fixed value locally.
fn chaos_seed() -> u64 {
    std::env::var("CHIPVQA_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_806)
}

fn tmp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "chipvqa-store-durability-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The report's result bytes: serialization with the run-metadata
/// `cache_stats` nulled, so cold and warm runs are comparable.
fn report_bytes(mut report: EvalReport) -> String {
    report.cache_stats = None;
    serde_json::to_string(&report).expect("report serializes")
}

/// One store-backed evaluation of the standard bench: opens the store
/// at `dir`, runs, flushes, returns the report plus both stat views.
fn eval_with_store(
    dir: &std::path::Path,
    config: StoreConfig,
    telemetry: Telemetry,
) -> (EvalReport, CacheStats, StoreStats) {
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let bench = ChipVqa::standard();
    let store = Arc::new(
        AnswerStore::open_with_telemetry(dir, config, telemetry.clone()).expect("store opens"),
    );
    let cache = Arc::new(AnswerCache::new().with_store(Arc::clone(&store)));
    let exec = ParallelExecutor::new(4)
        .with_cache(Arc::clone(&cache))
        .with_telemetry(telemetry);
    let report = exec.evaluate(&pipe, &bench, EvalOptions::default());
    (report, cache.stats(), store.stats())
}

/// The cold reference: same evaluation, no store, no cache.
fn cold_reference() -> EvalReport {
    let pipe = VlmPipeline::new(ModelZoo::gpt4o());
    let bench = ChipVqa::standard();
    ParallelExecutor::new(4).evaluate(&pipe, &bench, EvalOptions::default())
}

#[test]
fn warm_restart_is_byte_identical_and_serves_from_disk() {
    let dir = tmp_dir("warm");
    let reference = report_bytes(cold_reference());

    // cold run populates the store
    let cold_tele = Telemetry::recording();
    let (cold_report, cold_cache, cold_store) =
        eval_with_store(&dir, StoreConfig::default(), cold_tele.clone());
    assert_eq!(report_bytes(cold_report), reference, "store is transparent");
    assert_eq!(cold_cache.store_hits, 0, "nothing on disk yet");
    assert!(cold_store.inserts > 0, "cold run populates the store");
    let inserted = cold_store.inserts;
    assert_eq!(
        cold_tele.snapshot().counters.get("store.insert"),
        Some(&inserted),
        "store telemetry tracks inserts"
    );

    // warm run in a "fresh process": new handles, same directory
    let warm_tele = Telemetry::recording();
    let (warm_report, warm_cache, warm_store) =
        eval_with_store(&dir, StoreConfig::default(), warm_tele.clone());
    assert_eq!(
        report_bytes(warm_report),
        reference,
        "warm restart must converge to cold bytes"
    );
    assert_eq!(warm_cache.misses, 0, "no inference on a warm start");
    assert_eq!(
        warm_cache.store_hits, inserted,
        "every unique key served from disk"
    );
    assert_eq!(warm_cache.warm_hit_rate(), 1.0, "fully warm");
    assert_eq!(warm_store.misses, 0);
    let counters = warm_tele.snapshot().counters;
    assert_eq!(counters.get("store.hit"), Some(&inserted));
    assert_eq!(counters.get("store.miss"), None);
    assert_eq!(counters.get("store.insert"), None, "nothing new to insert");

    // run-spanning accounting (the counter that used to reset between
    // runs): the warm run's lifetime view includes the cold run's
    // traffic, surfaced on EvalReport.cache_stats
    assert_eq!(
        warm_cache.lifetime_misses, cold_store.lifetime_misses,
        "a fully warm run adds no lifetime misses"
    );
    assert!(
        warm_cache.lifetime_hits >= inserted,
        "lifetime hits span both runs"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn streamed_scaled_run_warm_starts_byte_identically() {
    // the `table2 --scale` pathway: evaluate_spec_stream with a
    // store-backed cache across two "processes"
    let dir = tmp_dir("stream");
    let spec = DatasetSpec::scaled(2);
    let pipe = VlmPipeline::new(ModelZoo::phi3_vision());
    let run = |tag: &str| {
        let store = Arc::new(AnswerStore::open(&dir).unwrap_or_else(|e| {
            panic!("{tag}: store opens: {e}");
        }));
        let cache = Arc::new(AnswerCache::new().with_store(store));
        let exec = ParallelExecutor::new(4).with_cache(Arc::clone(&cache));
        let (report, _) =
            exec.evaluate_spec_stream(&pipe, &spec, BASE_SIZE, EvalOptions::default());
        (report_bytes(report), cache.stats())
    };
    let (cold_bytes, cold_stats) = run("cold");
    assert_eq!(cold_stats.store_hits, 0);
    let (warm_bytes, warm_stats) = run("warm");
    assert_eq!(warm_bytes, cold_bytes, "streamed warm start converges");
    assert_eq!(warm_stats.misses, 0, "no inference on the warm stream");
    assert!(warm_stats.store_hits > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn kill_mid_append_breaks_lock_and_converges() {
    let reference = report_bytes(cold_reference());

    // harvest the real answers once
    let source_dir = tmp_dir("kill-src");
    let (_, _, _) = eval_with_store(&source_dir, StoreConfig::default(), Telemetry::disabled());
    let entries = AnswerStore::open_read_only(&source_dir)
        .expect("source reopens")
        .entries();
    assert!(entries.len() > 100);

    // replay into a fresh store, crash mid-append: the first half is
    // flushed (durable), the second half sits in the writer buffer and
    // dies with the "process"
    let dir = tmp_dir("kill");
    let store = AnswerStore::open(&dir).expect("store opens");
    let half = entries.len() / 2;
    for (key, answer) in &entries[..half] {
        store.insert(key.clone(), answer.clone());
    }
    store.flush().expect("prefix flushed");
    for (key, answer) in &entries[half..] {
        store.insert(key.clone(), answer.clone());
    }
    store.simulate_crash();
    assert!(dir.join("store.lock").exists(), "kill leaves the lock file");

    // next run: stale lock broken, tail recovered, missing answers
    // re-inferred — same bytes as the cold reference
    let (report, cache_stats, store_stats) =
        eval_with_store(&dir, StoreConfig::default(), Telemetry::disabled());
    assert_eq!(report_bytes(report), reference, "post-kill run converges");
    assert!(
        cache_stats.store_hits > 0,
        "the flushed prefix still serves from disk"
    );
    assert!(
        store_stats.inserts > 0,
        "the lost tail was re-inferred and re-persisted"
    );
    let _ = fs::remove_dir_all(&source_dir);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn rotation_compaction_and_eviction_all_converge() {
    let reference = report_bytes(cold_reference());

    // tiny segments force rotation; a tight byte budget forces LRU
    // eviction (with generation bumps) *during* the cold run
    let config = StoreConfig {
        segment_max_bytes: 4 << 10,
        max_bytes: 24 << 10,
        ..StoreConfig::default()
    };
    let dir = tmp_dir("bounded");
    let (cold_report, _, cold_store) = eval_with_store(&dir, config, Telemetry::disabled());
    assert_eq!(report_bytes(cold_report), reference, "bounded cold run");
    assert!(cold_store.segments > 1, "rotation produced segments");
    assert!(cold_store.evicted > 0, "the byte budget forced eviction");
    assert!(cold_store.generation > 0, "eviction bumped the generation");
    assert!(
        cold_store.bytes <= config.max_bytes + config.segment_max_bytes,
        "size stays bounded (modulo active-segment slack)"
    );

    // a checkpoint stamped before the eviction epoch is refused
    let bench = ChipVqa::standard();
    let pipes = vec![VlmPipeline::new(ModelZoo::gpt4o())];
    let mut ckpt = Checkpoint::new(&pipes, &bench, EvalOptions::default());
    ckpt.store_generation = Some(0);
    let store = AnswerStore::open_read_only(&dir).expect("reader opens");
    assert!(matches!(
        ckpt.validate_store(&store),
        Err(CheckpointError::StoreGenerationMismatch { .. })
    ));
    ckpt.bind_store_generation(&store);
    assert_eq!(ckpt.validate_store(&store), Ok(()));
    drop(store);

    // partially-warm restart: evicted answers re-inferred, same bytes.
    // The warm run gets a roomy byte budget: under the tight one, the
    // re-inserted answers can evict the cold run's surviving segments
    // before the workers reach the questions they answer (a scheduling
    // race), which would make `store_hits` flap between runs.
    let warm_config = StoreConfig {
        segment_max_bytes: config.segment_max_bytes,
        ..StoreConfig::default()
    };
    let (warm_report, warm_cache, _) = eval_with_store(&dir, warm_config, Telemetry::disabled());
    assert_eq!(report_bytes(warm_report), reference, "evicted warm run");
    assert!(warm_cache.store_hits > 0, "survivors serve from disk");

    // compaction rewrites live records only; a compacted store is
    // still byte-convergent and smaller-or-equal
    let store = AnswerStore::open_with(&dir, config).expect("reopens");
    let before = store.total_bytes();
    store.compact().expect("compacts");
    assert!(store.total_bytes() <= before);
    drop(store);
    let (compacted_report, _, _) = eval_with_store(&dir, config, Telemetry::disabled());
    assert_eq!(report_bytes(compacted_report), reference, "compacted run");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_reader_sees_flushed_prefix_while_writer_holds_the_lock() {
    let dir = tmp_dir("reader");
    let writer = AnswerStore::open(&dir).expect("writer opens");
    let (_, _, _) = {
        // populate through a second cache-less route: reuse the writer
        let entries_src = tmp_dir("reader-src");
        let out = eval_with_store(&entries_src, StoreConfig::default(), Telemetry::disabled());
        for (key, answer) in AnswerStore::open_read_only(&entries_src)
            .expect("source reopens")
            .entries()
        {
            writer.insert(key, answer);
        }
        let _ = fs::remove_dir_all(&entries_src);
        out
    };
    writer.flush().expect("flushes");

    // a second writer is refused while the first is live …
    let refused = AnswerStore::open(&dir).expect_err("second writer refused");
    assert_eq!(refused.kind(), std::io::ErrorKind::WouldBlock);

    // … but a read-only open works and sees every flushed record
    let reader = AnswerStore::open_read_only(&dir).expect("reader opens");
    assert_eq!(reader.len(), writer.len());
    for (key, answer) in reader.entries() {
        assert_eq!(writer.lookup(&key), Some(answer));
    }
    drop(writer);
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Any truncation point in any segment recovers to cold bytes: the
    /// torn tail is dropped on open and re-inferred during the run.
    #[test]
    fn seeded_truncations_recover_to_cold_bytes(
        seed in 0u64..1_000_000,
        cut in 0.0f64..1.0,
    ) {
        let reference = report_bytes(cold_reference());
        let dir = tmp_dir("trunc");
        let (_, _, populated) =
            eval_with_store(&dir, StoreConfig { segment_max_bytes: 16 << 10, ..StoreConfig::default() }, Telemetry::disabled());
        prop_assert!(populated.inserts > 0);

        // pick a segment and a byte offset from the seeds
        let segments = AnswerStore::open_read_only(&dir).expect("reader").segment_paths();
        prop_assert!(!segments.is_empty());
        let victim = &segments[((seed ^ chaos_seed()) % segments.len() as u64) as usize];
        let len = fs::metadata(victim).expect("victim exists").len();
        let keep = (len as f64 * cut) as u64;
        OpenOptions::new()
            .write(true)
            .open(victim)
            .expect("victim writable")
            .set_len(keep)
            .expect("truncates");

        let tele = Telemetry::recording();
        let (report, _, stats) = eval_with_store(&dir, StoreConfig::default(), tele.clone());
        prop_assert_eq!(report_bytes(report), reference, "truncated store converges");
        if keep < len && stats.recovered_segments > 0 {
            // a mid-record cut is repaired and reported
            prop_assert!(stats.recovered_bytes > 0);
            prop_assert!(tele.snapshot().counters.contains_key("store.recovered"));
        }
        // the repaired segments replay cleanly on the next open
        for seg in AnswerStore::open_read_only(&dir).expect("reader").segment_paths() {
            let (_, scan) = decode_segment(&seg).expect("decodes");
            prop_assert_eq!(scan.dropped_bytes, 0, "no residual damage");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Any single flipped bit is detected by the record checksums and
    /// the store still converges to cold bytes.
    #[test]
    fn seeded_bit_flips_recover_to_cold_bytes(
        seed in 0u64..1_000_000,
        bit in 0u8..8,
    ) {
        let reference = report_bytes(cold_reference());
        let dir = tmp_dir("flip");
        eval_with_store(&dir, StoreConfig { segment_max_bytes: 16 << 10, ..StoreConfig::default() }, Telemetry::disabled());

        let segments = AnswerStore::open_read_only(&dir).expect("reader").segment_paths();
        let victim = &segments[((seed ^ chaos_seed()) % segments.len() as u64) as usize];
        let mut bytes = fs::read(victim).expect("victim reads");
        prop_assert!(!bytes.is_empty());
        let pos = ((seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        fs::write(victim, &bytes).expect("victim writes");

        let (report, _, _) = eval_with_store(&dir, StoreConfig::default(), Telemetry::disabled());
        prop_assert_eq!(report_bytes(report), reference, "bit-flipped store converges");
        for seg in AnswerStore::open_read_only(&dir).expect("reader").segment_paths() {
            let (_, scan) = decode_segment(&seg).expect("decodes");
            prop_assert_eq!(scan.dropped_bytes, 0, "no residual damage");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Read-only opens racing an exclusive writer's `compact()` must never
/// observe a torn segment set. Compaction rewrites live records into
/// fresh higher-sequence segments *before* deleting the old ones, and a
/// non-exclusive replay tolerates a segment vanishing between listing
/// and decode — so every reader, whenever it lands, resolves the full
/// key set to the latest values.
#[test]
fn read_only_opens_racing_compaction_never_observe_a_torn_segment_set() {
    use chipvqa::eval::{CacheKey, CachedAnswer};
    use chipvqa::models::backbone::AnswerPath;
    use std::sync::atomic::AtomicBool;

    const KEYS: u64 = 40;
    fn key(i: u64) -> CacheKey {
        CacheKey {
            model_fingerprint: 0xfeed ^ i,
            question_id: format!("digital-{i:03}"),
            prompt_hash: 0x1234_5678 + i,
            downsample: 1,
            attempt: 0,
            dataset_fingerprint: 7,
        }
    }
    fn answer(i: u64, round: u64) -> CachedAnswer {
        CachedAnswer {
            text: format!("answer-{i}-r{round}"),
            path: AnswerPath::Solved,
            solve_probability: 0.25,
        }
    }

    let dir = tmp_dir("reader-vs-compact");
    // tiny segments: every round spans many files, so compaction has a
    // wide multi-file window for a reader to land inside
    let config = StoreConfig {
        segment_max_bytes: 256,
        ..StoreConfig::default()
    };
    let writer = AnswerStore::open_with_telemetry(&dir, config, Telemetry::disabled())
        .expect("writer opens");
    for i in 0..KEYS {
        writer.insert(key(i), answer(i, 0));
    }
    writer.flush().expect("flushes");

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    let mut opens = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let reader = AnswerStore::open_read_only(&dir)
                            .expect("a read-only open must always succeed mid-compaction");
                        assert_eq!(
                            reader.len(),
                            KEYS as usize,
                            "torn segment set: a reader lost keys mid-compaction"
                        );
                        for i in 0..KEYS {
                            let got = reader
                                .lookup(&key(i))
                                .unwrap_or_else(|| panic!("key {i} vanished mid-compaction"));
                            assert!(
                                got.text.starts_with(&format!("answer-{i}-r")),
                                "key {i} resolved to a foreign answer: {}",
                                got.text
                            );
                        }
                        opens += 1;
                    }
                    opens
                })
            })
            .collect();

        // the writer churns: overwrite every key (making the previous
        // round dead) then compact the garbage away, repeatedly
        for round in 1..=6u64 {
            for i in 0..KEYS {
                writer.insert(key(i), answer(i, round));
            }
            writer.flush().expect("flushes");
            writer.compact().expect("compacts");
        }
        stop.store(true, Ordering::Relaxed);
        let total: usize = readers
            .into_iter()
            .map(|r| r.join().expect("reader thread"))
            .sum();
        assert!(total > 0, "readers actually raced the compactor");
    });

    // post-race: the final generation's values survived the churn
    let reader = AnswerStore::open_read_only(&dir).expect("final reader");
    for i in 0..KEYS {
        assert_eq!(
            reader.lookup(&key(i)).expect("key survives").text,
            format!("answer-{i}-r6")
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

//! T1: property tests for the answer cache — under arbitrary
//! interleavings of insert / lookup / invalidate, a lookup never returns
//! a stale answer: whatever comes back was inserted under *exactly* the
//! queried key (same model fingerprint, same prompt hash), and presence
//! always agrees with a reference model.
//!
//! Also home to the **golden fingerprint freeze**: the byte encoding of
//! [`CacheKey`] is the persistent store's content address, so its exact
//! bytes (and the FNV-1a constants beneath every fingerprint in the
//! workspace) are pinned against literal expected values. A failure
//! here is an on-disk **format break** — existing stores would silently
//! change meaning — not a refactor.

use std::collections::HashMap;
use std::sync::OnceLock;

use chipvqa::core::ChipVqa;
use chipvqa::eval::cache::{prompt_hash, AnswerCache, CacheKey, CachedAnswer};
use chipvqa::eval::store::{encode_record, fnv1a64, RECORD_HEADER_BYTES, RECORD_MAGIC};
use chipvqa::models::backbone::AnswerPath;
use proptest::prelude::*;

fn standard() -> &'static ChipVqa {
    static BENCH: OnceLock<ChipVqa> = OnceLock::new();
    BENCH.get_or_init(ChipVqa::standard)
}

/// The canonical answer for a key — injective in every key component,
/// so any cross-key leak shows up as a text mismatch.
fn canonical_answer(key: &CacheKey) -> CachedAnswer {
    CachedAnswer {
        text: format!(
            "{}|{}|{}|{}|{}",
            key.model_fingerprint, key.question_id, key.prompt_hash, key.downsample, key.attempt
        ),
        path: AnswerPath::Solved,
        solve_probability: 0.5,
    }
}

/// A small deterministic key universe: 3 fingerprints × 4 questions ×
/// 2 prompt revisions × 2 resolutions. Prompt revisions share the
/// question id but differ in prompt hash — the stale-answer hazard.
fn key_universe() -> Vec<CacheKey> {
    let bench = standard();
    let mut keys = Vec::new();
    for fp in [11u64, 22, 33] {
        for q in bench.questions().iter().take(4) {
            let mut edited = q.clone();
            edited.prompt.push_str(" (rev B)");
            for question in [q, &edited] {
                for downsample in [1usize, 4] {
                    keys.push(CacheKey::new(fp, question, downsample, 0));
                }
            }
        }
    }
    keys
}

/// The frozen cache-key encoding. These literals were computed once
/// from the shipped implementation and must never change: they are the
/// content addresses of every record in every existing on-disk store.
#[test]
fn golden_cache_key_fingerprint_bytes_are_frozen() {
    // the FNV-1a 64 constants every fingerprint in the workspace uses
    assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(fnv1a64(b"chipvqa"), 0x651f_4f1c_3757_c02d);

    let key = CacheKey {
        model_fingerprint: 0x1122_3344_5566_7788,
        question_id: "digital-042".to_string(),
        prompt_hash: 0xCAFE_BABE_1234_5678,
        downsample: 3,
        attempt: 2,
        dataset_fingerprint: 0x0F0F_0F0F_0F0F_0F0F,
    };

    // canonical_bytes: five LE u64 fields, the id length, the raw id
    let expected_hex = "887766554433221178563412bebafeca0300000000000000\
                        02000000000000000f0f0f0f0f0f0f0f0b00000000000000\
                        6469676974616c2d303432";
    let expected: Vec<u8> = (0..expected_hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&expected_hex[i..i + 2], 16).expect("hex"))
        .collect();
    let bytes = key.canonical_bytes();
    assert_eq!(bytes.len(), 59);
    assert_eq!(bytes, expected, "CacheKey canonical byte layout moved");
    assert_eq!(
        key.content_hash(),
        0xbf32_1e1d_8886_b57a,
        "CacheKey content hash moved"
    );

    // prompt_hash is the same FNV over the full prompt — pinned by
    // relation so a divergence between the two hashers is caught
    let bench = ChipVqa::standard();
    for q in bench.iter().take(5) {
        assert_eq!(prompt_hash(q), fnv1a64(q.full_prompt().as_bytes()));
    }

    // record framing: magic, payload length, key hash, payload hash
    let answer = CachedAnswer {
        text: "the mux selects d1 when sel is high".to_string(),
        path: AnswerPath::Solved,
        solve_probability: 0.25,
    };
    let record = encode_record(&key, &answer);
    assert_eq!(RECORD_HEADER_BYTES, 24);
    assert_eq!(&record[0..4], &RECORD_MAGIC.to_le_bytes());
    assert_eq!(RECORD_MAGIC, 0xC51A_D0C5, "record magic moved");
    let payload = &record[RECORD_HEADER_BYTES..];
    let len = u32::from_le_bytes(record[4..8].try_into().expect("4 bytes")) as usize;
    assert_eq!(len, payload.len());
    assert_eq!(
        &record[8..16],
        &key.content_hash().to_le_bytes(),
        "framing key hash must be the frozen content hash"
    );
    assert_eq!(&record[16..24], &fnv1a64(payload).to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn interleavings_never_serve_stale_answers(
        ops in proptest::collection::vec((0u8..4, 0usize..48), 1..80)
    ) {
        let keys = key_universe();
        prop_assert_eq!(keys.len(), 48);
        let cache = AnswerCache::new();
        let mut reference: HashMap<CacheKey, CachedAnswer> = HashMap::new();

        for (op, idx) in ops {
            let key = &keys[idx];
            match op {
                // insert the canonical answer for this exact key
                0 => {
                    cache.insert(key.clone(), canonical_answer(key));
                    reference.insert(key.clone(), canonical_answer(key));
                }
                // lookup: must agree with the reference, and any hit
                // must be the canonical answer for *this* key
                1 => {
                    let got = cache.lookup(key);
                    let want = reference.get(key).cloned();
                    prop_assert_eq!(got.clone(), want);
                    if let Some(hit) = got {
                        prop_assert_eq!(hit, canonical_answer(key));
                    }
                }
                // point invalidation
                2 => {
                    let existed = cache.invalidate(key);
                    prop_assert_eq!(existed, reference.remove(key).is_some());
                }
                // model-wide invalidation
                _ => {
                    let removed = cache.invalidate_model(key.model_fingerprint);
                    let before = reference.len();
                    reference.retain(|k, _| k.model_fingerprint != key.model_fingerprint);
                    prop_assert_eq!(removed, before - reference.len());
                }
            }
        }

        // final sweep: every key answers exactly per the reference
        for key in &keys {
            prop_assert_eq!(cache.lookup(key), reference.get(key).cloned());
        }
        prop_assert_eq!(cache.len(), reference.len());
    }

    /// A changed prompt (same question id) or changed fingerprint can
    /// never hit an entry cached under the old key.
    #[test]
    fn changed_prompt_or_model_always_misses(fp in 1u64..1000, qi in 0usize..20) {
        let bench = standard();
        let q = &bench.questions()[qi];
        let cache = AnswerCache::new();
        let key = CacheKey::new(fp, q, 1, 0);
        cache.insert(key.clone(), canonical_answer(&key));

        let mut edited = q.clone();
        edited.prompt.push('!');
        prop_assert_ne!(prompt_hash(q), prompt_hash(&edited));
        prop_assert!(cache.lookup(&CacheKey::new(fp, &edited, 1, 0)).is_none());
        prop_assert!(cache.lookup(&CacheKey::new(fp ^ 1, q, 1, 0)).is_none());
        prop_assert!(cache.lookup(&CacheKey::new(fp, q, 2, 0)).is_none());
        prop_assert!(cache.lookup(&CacheKey::new(fp, q, 1, 1)).is_none());
        prop_assert!(cache.lookup(&key).is_some());
    }

    /// Snapshot round-trips preserve contents exactly.
    #[test]
    fn snapshot_roundtrip_preserves_entries(
        picks in proptest::collection::vec(0usize..48, 0..30)
    ) {
        let keys = key_universe();
        let cache = AnswerCache::new();
        for idx in &picks {
            let key = &keys[*idx];
            cache.insert(key.clone(), canonical_answer(key));
        }
        let snap = cache.snapshot();
        let restored = AnswerCache::from_snapshot(snap.clone());
        prop_assert_eq!(restored.snapshot(), snap);
        for idx in &picks {
            let key = &keys[*idx];
            prop_assert_eq!(restored.lookup(key), Some(canonical_answer(key)));
        }
    }
}

//! X1: the paper's headline claims, asserted end-to-end over the full
//! reproduction (dataset → simulator → judge).

use chipvqa::core::question::Category;
use chipvqa::core::ChipVqa;
use chipvqa::eval::harness::{evaluate, EvalOptions};
use chipvqa::models::{ModelZoo, VlmPipeline};

fn rate(profile: chipvqa::models::ModelProfile, bench: &ChipVqa) -> f64 {
    evaluate(&VlmPipeline::new(profile), bench, EvalOptions::default()).overall()
}

/// "GPT-4o achieves only 44% correctness rate" (abstract) and "drops
/// from 44% to 20%" when choices are removed (§IV-A). We hold the shape
/// with generous bands: standard in [0.38, 0.52], challenge in
/// [0.15, 0.30], and a drop of at least 12 points.
#[test]
fn gpt4o_44_percent_drops_without_choices() {
    let bench = ChipVqa::standard();
    let standard = rate(ModelZoo::gpt4o(), &bench);
    let challenge = rate(ModelZoo::gpt4o(), &bench.challenge());
    assert!(
        (0.38..=0.52).contains(&standard),
        "standard pass@1 {standard}"
    );
    assert!(
        (0.15..=0.30).contains(&challenge),
        "challenge pass@1 {challenge}"
    );
    assert!(
        standard - challenge >= 0.12,
        "removing choices must cost >=12 points: {standard} -> {challenge}"
    );
}

/// "GPT-4o leads other open-source models by an average of 20%" (§IV-A).
#[test]
fn gpt4o_leads_open_source_by_about_20_points() {
    let bench = ChipVqa::standard();
    let gpt = rate(ModelZoo::gpt4o(), &bench);
    let open: Vec<f64> = ModelZoo::all()
        .into_iter()
        .filter(|p| p.name != "GPT4o")
        .map(|p| rate(p, &bench))
        .collect();
    let mean = open.iter().sum::<f64>() / open.len() as f64;
    let lead = gpt - mean;
    assert!(
        (0.15..=0.35).contains(&lead),
        "GPT-4o lead {lead} (gpt {gpt}, open mean {mean})"
    );
    // and it beats every single open-source model
    for (p, r) in ModelZoo::all().into_iter().zip(open.iter()) {
        assert!(gpt > *r, "{} ({r}) must trail GPT-4o ({gpt})", p.name);
    }
}

/// "The Digital category, characterized by a significant prevalence of
/// multiple-choice questions, establishes a baseline pass rate of 25%"
/// (§IV-A): even weak models stay near the guessing floor on Digital.
#[test]
fn digital_mc_guessing_floor() {
    let bench = ChipVqa::standard();
    let weak = evaluate(
        &VlmPipeline::new(ModelZoo::llava_7b()),
        &bench,
        EvalOptions::default(),
    );
    let digital = weak.category_rate(Category::Digital);
    assert!(
        (0.15..=0.45).contains(&digital),
        "weak model Digital rate {digital} should hover near the MC floor"
    );
    // the same model collapses once choices are removed
    let challenge = evaluate(
        &VlmPipeline::new(ModelZoo::llava_7b()),
        &bench.challenge(),
        EvalOptions::default(),
    );
    assert!(
        challenge.category_rate(Category::Digital) < digital - 0.10,
        "SA must strip the guessing floor"
    );
}

/// Every model does better with choices than without (the RAG effect of
/// §IV-A) — across the whole roster.
#[test]
fn choices_help_every_model() {
    let bench = ChipVqa::standard();
    let challenge = bench.challenge();
    for profile in ModelZoo::all() {
        let name = profile.name.clone();
        let s = rate(profile.clone(), &bench);
        let c = rate(profile, &challenge);
        assert!(s >= c, "{name}: standard {s} must be >= challenge {c}");
    }
}

/// LLaVA backbone scaling (§IV-A): the 34B/LLaMA-3 backbones beat the
/// 7B Mistral backbone on the standard collection.
#[test]
fn llava_backbone_scaling() {
    let bench = ChipVqa::standard();
    let r7 = rate(ModelZoo::llava_7b(), &bench);
    let r34 = rate(ModelZoo::llava_34b(), &bench);
    let rl3 = rate(ModelZoo::llava_llama3(), &bench);
    assert!(r34 > r7 - 0.02, "34B {r34} vs 7B {r7}");
    assert!(rl3 > r7 - 0.02, "LLaMA-3 {rl3} vs 7B {r7}");
}

/// kosmos-2 and paligemma anchor the bottom of the table (§IV-A).
#[test]
fn weakest_models_at_the_bottom() {
    let bench = ChipVqa::standard();
    let kosmos = rate(ModelZoo::kosmos_2(), &bench);
    let pali = rate(ModelZoo::paligemma(), &bench);
    for profile in ModelZoo::all() {
        if profile.name == "kosmos-2" || profile.name == "paligemma" {
            continue;
        }
        let r = rate(profile.clone(), &bench);
        assert!(
            r >= kosmos && r >= pali - 0.02,
            "{} ({r}) should beat kosmos-2 ({kosmos}) and paligemma ({pali})",
            profile.name
        );
    }
}

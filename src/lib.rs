//! # ChipVQA — a full reproduction of the DATE 2025 benchmark paper
//!
//! *ChipVQA: Benchmarking Visual Language Models for Chip Design*
//! (Yang et al., NVIDIA, DATE 2025) introduces a 142-question VQA suite
//! over five chip-design disciplines and evaluates twelve VLMs on it.
//! This workspace reproduces the entire system in Rust: the benchmark
//! (procedurally generated with solver-backed golden answers), the domain
//! substrates the questions are built from, a mechanistic VLM simulator
//! standing in for the GPU-served models, the evaluation harness, and the
//! agent study. See `DESIGN.md` for the substitution rationale and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! This umbrella crate re-exports every member so downstream users can
//! depend on one crate:
//!
//! ```
//! use chipvqa::core::ChipVqa;
//! use chipvqa::eval::harness::{evaluate, EvalOptions};
//! use chipvqa::models::{ModelZoo, VlmPipeline};
//!
//! let bench = ChipVqa::standard();
//! assert_eq!(bench.len(), 142);
//! let report = evaluate(
//!     &VlmPipeline::new(ModelZoo::gpt4o()),
//!     &bench,
//!     EvalOptions::default(),
//! );
//! assert!(report.overall() > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The agent-based VQA system (Table III).
pub use chipvqa_agent as agent;
/// The analog-design substrate (MNA, transfer functions, ADCs).
pub use chipvqa_analog as analog;
/// The computer-architecture substrate (pipelines, caches, MESI, NoC).
pub use chipvqa_arch as arch;
/// The benchmark itself (questions, dataset, statistics).
pub use chipvqa_core as core;
/// The evaluation harness (judge, pass@k, reports).
pub use chipvqa_eval as eval;
/// The digital-logic substrate (expressions, QM, netlists, FSMs).
pub use chipvqa_logic as logic;
/// The manufacturing substrate (etch, litho, diffusion, yield).
pub use chipvqa_manuf as manuf;
/// The VLM simulator (encoder, backbone, model zoo).
pub use chipvqa_models as models;
/// The physical-design substrate (routing, CTS, STA, legalization).
pub use chipvqa_physd as physd;
/// The raster substrate (pixmaps, rendering, legibility metrics).
pub use chipvqa_raster as raster;
/// The resident evaluation service (sessions, admission control).
pub use chipvqa_serve as serve;
/// Deterministic observability (spans, metrics, trace sinks).
pub use chipvqa_telemetry as telemetry;
